"""Command-line interface.

Usage::

    python -m repro list                         # registry benchmarks
    python -m repro run 256-48 --engine snicit --batch 1000
    python -m repro run 144-24 --trace trace.json --metrics
    python -m repro compare 256-48 --batch 1000  # SNICIT vs the champions
    python -m repro experiment table3 --scale 0.5
    python -m repro generate 256-24 out_dir/     # write SDGC .tsv layers
    python -m repro serve 144-24 --requests 128  # micro-batched serving demo
    python -m repro serve 144-24 --async-transport --arrival-rate 500
    python -m repro serve --model a=144-24 --model b=144-48 --memory-budget-mb 8
    python -m repro serve --model a=144-24 --slo 'p99<50ms@60s/99%' --obs-port 9095
    python -m repro serve --model a=144-24 --model b=144-48 \\
        --qos a=interactive --qos b=batch:rate=256,burst=512
    python -m repro bench-serve --tiers none --no-warm-boot --qos
    python -m repro bench-serve                  # tiered cold vs warm throughput
    python -m repro bench-serve 144-24 --centroid-reuse --stream repeat
    python -m repro bench-serve --multi --memory-budget-mb 8
    python -m repro warmup 144-24 --centroid-reuse --save warm.npz
    python -m repro warmup 144-24 --centroid-reuse --load warm.npz  # verify
    python -m repro serve 144-24 --workers 2 --warm-state warm.npz

All human-facing output goes through the ``"repro"`` logger: ``--verbose``
adds instrumentation chatter, ``--quiet`` keeps only warnings.  ``--trace``
writes a Chrome trace-event file (open it in Perfetto or chrome://tracing);
``--metrics`` prints the Prometheus text exposition after the command.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro._version import __version__
from repro.obs import get_logger, setup_logging

log = get_logger()

EXPERIMENTS = (
    "table1", "table3", "table4", "fig1", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "ablations", "related",
)


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _make_obs(args):
    """(tracer, registry) from the --trace/--metrics flags (None when off)."""
    from repro.obs import MetricsRegistry, Tracer

    tracer = Tracer() if getattr(args, "trace", None) else None
    registry = MetricsRegistry() if getattr(args, "metrics", False) else None
    return tracer, registry


def _finish_obs(args, tracer, registry) -> None:
    """Write the trace file / print the metrics exposition, if requested."""
    if tracer is not None:
        path = tracer.write_chrome(args.trace)
        log.info(f"wrote Chrome trace to {path} ({len(tracer)} spans)")
    if registry is not None:
        log.info(registry.to_prometheus().rstrip("\n"))


def _start_obs_endpoint(args, metrics, slo_provider=None):
    """Scrape endpoint from ``--obs-port`` (None when the flag is off)."""
    if getattr(args, "obs_port", None) is None:
        return None
    from repro.obs import ObsServer

    server = ObsServer(metrics, slo_provider=slo_provider, port=args.obs_port)
    log.info(f"obs endpoint at {server.url} (/metrics /slo /healthz)")
    return server


def _finish_obs_endpoint(args, server) -> None:
    """Hold the endpoint open ``--obs-hold-s`` seconds, then shut it down."""
    if server is None:
        return
    hold = getattr(args, "obs_hold_s", 0.0) or 0.0
    if hold > 0:
        log.info(f"holding obs endpoint open for {hold:g}s (ctrl-c to stop)")
        try:
            time.sleep(hold)
        except KeyboardInterrupt:
            pass
    server.close()


def _parse_qos_flags(args, names) -> dict[str, str] | None:
    """``--qos NAME=SPEC`` flags as a name -> policy-spec dict.

    Returns None when no flag was given; raises SystemExit-style (logged,
    value ``None`` with ``args._qos_error`` set) handling is left to the
    callers, so this just validates shape and tenant names.
    """
    if not getattr(args, "qos", None):
        return None
    policies: dict[str, str] = {}
    for spec in args.qos:
        name, sep, policy = spec.partition("=")
        if not sep or not name or not policy:
            raise ValueError(f"--qos wants NAME=SPEC, got {spec!r}")
        if name not in names:
            raise ValueError(
                f"--qos names unknown tenant {name!r}; tenants: {sorted(names)}"
            )
        policies[name] = policy
    return policies


def _cmd_list(args) -> int:
    from repro.harness.report import TextTable
    from repro.radixnet.registry import list_benchmarks

    table = TextTable(["name", "paper", "neurons", "layers", "bias", "connections"])
    for spec in list_benchmarks():
        table.add(spec.name, spec.paper_name, spec.neurons, spec.layers,
                  spec.bias, spec.connections)
    log.info(table.render())
    return 0


def _cmd_run(args) -> int:
    from repro.harness.experiments.common import sdgc_config
    from repro.harness.runner import run_engine
    from repro.harness.workloads import get_benchmark, get_input

    net = get_benchmark(args.benchmark)
    y0 = get_input(args.benchmark, args.batch)
    cfg = sdgc_config(net.num_layers, threshold_layer=args.threshold)\
        if args.threshold is not None else sdgc_config(net.num_layers)
    tracer, registry = _make_obs(args)
    run = run_engine(
        args.engine, net, y0, snicit_config=cfg, tracer=tracer, metrics=registry
    )
    log.info(f"{args.engine} on {args.benchmark} (B={args.batch}): "
             f"{run.wall_ms:.1f} ms wall, {run.modeled_ms:.4f} ms modeled")
    for stage, seconds in run.result.stage_seconds.items():
        log.info(f"  {stage:18s} {seconds * 1e3:9.1f} ms")
    if args.json:
        # machine-facing report: always on stdout, regardless of log level
        print(json.dumps(run.result.to_json(), indent=2))
    _finish_obs(args, tracer, registry)
    return 0


def _cmd_compare(args) -> int:
    from repro.harness.experiments.common import sdgc_config
    from repro.harness.runner import run_comparison
    from repro.harness.workloads import get_benchmark, get_input

    net = get_benchmark(args.benchmark)
    y0 = get_input(args.benchmark, args.batch)
    runs = run_comparison(net, y0, sdgc_config(net.num_layers))
    sn = runs["snicit"]
    log.info(f"{args.benchmark} (B={args.batch}) — categories agree across engines")
    for kind, run in runs.items():
        log.info(f"  {kind:10s} {run.wall_ms:10.1f} ms   "
                 f"({run.wall_ms / sn.wall_ms:5.2f}x SNICIT)")
    return 0


def _cmd_experiment(args) -> int:
    import importlib

    module = importlib.import_module(f"repro.harness.experiments.{args.name}")
    report = module.run(scale=args.scale)
    log.info(report.render())
    if args.out:
        Path(args.out).write_text(report.render() + "\n")
    return 0


def _cmd_generate(args) -> int:
    from repro.radixnet.io import save_layer_tsv
    from repro.radixnet.registry import build_benchmark

    net = build_benchmark(args.benchmark, seed=args.seed)
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for i, layer in enumerate(net.layers):
        save_layer_tsv(out / f"{args.benchmark}-l{i:04d}.tsv", layer.weight)
    log.info(f"wrote {net.num_layers} layers to {out}/")
    return 0


def _serve_multi(args) -> int:
    """Multi-model serving: route a mixed stream through the router."""
    import numpy as np

    from repro.harness.experiments.common import sdgc_config
    from repro.harness.workloads import get_benchmark, get_input
    from repro.serve import AsyncRouter, ModelRegistry, Router
    from repro.serve.bench import _split_requests, poisson_interarrivals

    models: list[tuple[str, str]] = []
    for spec in args.model:
        name, sep, benchmark = spec.partition("=")
        if not sep or not name or not benchmark:
            log.error(f"--model wants NAME=BENCHMARK, got {spec!r}")
            return 2
        models.append((name, benchmark))
    budget_bytes = (
        int(args.memory_budget_mb * 1024 * 1024)
        if args.memory_budget_mb is not None
        else None
    )
    try:
        qos_map = _parse_qos_flags(args, {name for name, _ in models}) or {}
    except ValueError as exc:
        log.error(str(exc))
        return 2
    tracer, _ = _make_obs(args)
    registry = ModelRegistry(memory_budget_bytes=budget_bytes)
    streams: dict[str, list] = {}
    for name, benchmark in models:
        net = get_benchmark(benchmark)
        overrides = {} if args.threshold is None else {"threshold_layer": args.threshold}
        cfg = sdgc_config(net.num_layers, **overrides)
        registry.register(
            name, net, config=cfg, warm=True, tracer=tracer,
            warm_state=args.warm_state,
            centroid_reuse=args.centroid_reuse, reuse_tolerance=args.reuse_tolerance,
            revise_ratio=args.revise_ratio,
            slo=args.slo,
            qos=qos_map.get(name),
        )
        streams[name] = _split_requests(
            np.asarray(get_input(benchmark, args.requests * args.request_cols, args.seed)),
            args.request_cols,
        )
    obs_server = _start_obs_endpoint(
        args, registry.metrics, slo_provider=registry.slo_report_json
    )
    # round-robin the tenants in block-sized chunks of requests
    chunk = max(1, args.max_batch // args.request_cols)
    mixed: list[tuple[str, np.ndarray]] = []
    offset = 0
    while any(offset < len(s) for s in streams.values()):
        for name, s in streams.items():
            for y0 in s[offset : offset + chunk]:
                mixed.append((name, y0))
        offset += chunk
    if args.async_transport:
        router = AsyncRouter(
            registry, max_batch=args.max_batch, max_wait_s=args.max_wait_ms / 1e3,
            queue_limit=args.queue_limit, on_full=args.on_full,
        )
        interarrivals = None
        if args.arrival_rate is not None:
            interarrivals = poisson_interarrivals(
                len(mixed), args.arrival_rate, args.seed
            )
        report = router.serve(iter(mixed), interarrivals=interarrivals)
    else:
        if args.arrival_rate is not None:
            log.warning("--arrival-rate needs --async-transport for multi-model; ignored")
        router = Router(
            registry, max_batch=args.max_batch, max_wait_s=args.max_wait_ms / 1e3,
            queue_limit=args.queue_limit,
        )
        report = router.serve(iter(mixed))
    summary = report.summary()
    transport = "async" if args.async_transport else "sync"
    log.info(f"served {summary['served']}/{summary['requests']} requests "
             f"({summary['rejected']} rejected, status={summary['status']}) "
             f"across {len(models)} models [{transport}] "
             f"in {summary['wall_seconds'] * 1e3:.1f} ms")
    for name, per in summary["models"].items():
        lat = per["latency_seconds"]
        p50 = f"{lat['p50'] * 1e3:7.2f} ms" if lat is not None else "   n/a"
        log.info(f"  [{name}] {per['served']}/{per['requests']} served "
                 f"(status={per['status']})  "
                 f"{per['columns_per_second']:9.1f} col/s   p50 {p50}")
    if report.slo:
        for name, slo in report.slo.items():
            est = slo["latency_estimate_s"]
            est_text = f"{est * 1e3:.2f} ms" if est is not None else "n/a"
            log.info(f"  [{name}] SLO {slo['policy']['describe']}: "
                     f"p{slo['policy']['quantile'] * 100:g}≈{est_text}, "
                     f"burn {slo['burn_rate']:.2f}, "
                     f"compliant={slo['compliant']}")
    budget = registry.budget.stats()
    if budget["limit_bytes"] is not None:
        log.info(f"  budget       {budget['retained_bytes']} / {budget['limit_bytes']} "
                 f"bytes retained (highwater {budget['highwater_bytes']}, "
                 f"{budget['evictions']} warm-to-cold demotions: "
                 f"{summary['demoted'] or 'none'})")
    if qos_map:
        admission = (router.stats().get("qos") or {}).get("admission") or {}
        for name in sorted(qos_map):
            reasons = (admission.get("shed") or {}).get(name) or {}
            log.info(f"  [{name}] qos {registry.qos_policy(name).describe()}: "
                     f"shed {sum(reasons.values())}"
                     + (f" ({reasons})" if reasons else ""))
    if args.metrics:
        log.info(registry.metrics.to_prometheus().rstrip("\n"))
    if tracer is not None:
        path = tracer.write_chrome(args.trace)
        log.info(f"wrote Chrome trace to {path} ({len(tracer)} spans)")
    _finish_obs_endpoint(args, obs_server)
    return 0


def _serve_fleet(args) -> int:
    """Multi-process serving: shard tenant streams across N workers."""
    import numpy as np

    from repro.harness.workloads import get_input
    from repro.serve.bench import _split_requests
    from repro.serve.fleet import FleetDispatcher, TenantSpec

    tenants: list[tuple[str, str]] = []
    if args.model:
        for spec in args.model:
            name, sep, benchmark = spec.partition("=")
            if not sep or not name or not benchmark:
                log.error(f"--model wants NAME=BENCHMARK, got {spec!r}")
                return 2
            tenants.append((name, benchmark))
    else:
        tenants.append((args.benchmark, args.benchmark))
    if args.arrival_rate is not None:
        log.warning("--arrival-rate is not supported with --workers; ignored")
    try:
        qos_map = _parse_qos_flags(args, {name for name, _ in tenants}) or {}
    except ValueError as exc:
        log.error(str(exc))
        return 2
    specs = [
        TenantSpec(
            name, benchmark, threshold=args.threshold, slo=args.slo,
            centroid_reuse=args.centroid_reuse,
            reuse_tolerance=args.reuse_tolerance,
            revise_ratio=args.revise_ratio,
            warm_state=args.warm_state,
            qos=qos_map.get(name),
        )
        for name, benchmark in tenants
    ]
    budget_bytes = (
        int(args.memory_budget_mb * 1024 * 1024)
        if args.memory_budget_mb is not None
        else None
    )
    fleet = FleetDispatcher(
        specs,
        workers=args.workers,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        queue_limit=args.queue_limit,
        memory_budget_bytes=budget_bytes,
        worker_obs=args.obs_port is not None,
    )
    obs_server = None
    if args.obs_port is not None:
        obs_server = fleet.obs_endpoint(port=args.obs_port)
        log.info(f"obs endpoint at {obs_server.url} "
                 f"(/metrics /slo /healthz, merged across workers)")
    for name, benchmark in tenants:
        pool = np.asarray(
            get_input(benchmark, args.requests * args.request_cols, args.seed)
        )
        for j, y0 in enumerate(_split_requests(pool, args.request_cols)):
            fleet.submit(name, y0, stream=f"{name}/{j % args.streams}")
    report = fleet.join()
    summary = report.summary()
    log.info(f"served {summary['served']}/{summary['requests']} requests "
             f"({summary['rejected']} rejected, {summary['failed']} failed, "
             f"status={summary['status']}) across {args.workers} workers "
             f"in {summary['wall_seconds'] * 1e3:.1f} ms")
    cap = summary["capacity_columns_per_second"]
    log.info(f"  throughput   {summary['columns_per_second']:9.1f} col/s wall   "
             f"{cap:9.1f} col/s capacity" if cap else
             f"  throughput   {summary['columns_per_second']:9.1f} col/s wall")
    for per in summary["per_worker"]:
        rep = per["report"] or {}
        log.info(f"  [worker {per['worker']}] "
                 f"{rep.get('requests', '?')} requests, "
                 f"{len(rep.get('streams') or [])} streams, "
                 f"cpu {1e3 * (rep.get('cpu_seconds') or 0):.1f} ms, "
                 f"restarts={per['restarts']}")
        shed = (((rep.get("qos") or {}).get("admission") or {}).get("shed")
                or {})
        if shed:
            log.info(f"  [worker {per['worker']}] qos shed: " + ", ".join(
                f"{m}={sum(r.values())}" for m, r in sorted(shed.items())
            ))
    if args.slo:
        for key, slo in sorted(fleet.merged_slo().items()):
            est = slo["latency_estimate_s"]
            est_text = f"{est * 1e3:.2f} ms" if est is not None else "n/a"
            log.info(f"  [{key}] SLO {slo['policy']['describe']}: "
                     f"p{slo['policy']['quantile'] * 100:g}≈{est_text}, "
                     f"burn {slo['burn_rate']:.2f}, "
                     f"compliant={slo['compliant']}")
    if args.metrics:
        log.info(fleet.render_merged_metrics().rstrip("\n"))
    _finish_obs_endpoint(args, obs_server)
    fleet.close()
    return 0


def _cmd_serve(args) -> int:
    from repro.harness.experiments.common import sdgc_config
    from repro.harness.workloads import get_benchmark, get_input
    from repro.serve import AsyncInferenceServer, EngineSession, InferenceServer
    from repro.serve.bench import _split_requests, poisson_interarrivals

    if args.workers:
        if args.benchmark is None and not args.model:
            log.error("serve --workers needs a benchmark or --model NAME=BENCHMARK")
            return 2
        return _serve_fleet(args)
    if args.model:
        return _serve_multi(args)
    if args.benchmark is None:
        log.error("serve needs a benchmark, or at least one --model NAME=BENCHMARK")
        return 2
    if getattr(args, "qos", None):
        log.warning("--qos applies to --model / --workers tenants; ignored "
                    "for single-benchmark serving (one tenant, no contention)")
    net = get_benchmark(args.benchmark)
    overrides = {} if args.threshold is None else {"threshold_layer": args.threshold}
    cfg = sdgc_config(net.num_layers, **overrides)
    stream = _split_requests(
        get_input(args.benchmark, args.requests * args.request_cols, args.seed),
        args.request_cols,
    )
    interarrivals = None
    if args.arrival_rate is not None:
        interarrivals = poisson_interarrivals(len(stream), args.arrival_rate, args.seed)
    tracer, registry = _make_obs(args)
    session = EngineSession(
        net, cfg, tracer=tracer, metrics=registry,
        warm=args.warm_state is None,
        centroid_reuse=args.centroid_reuse, reuse_tolerance=args.reuse_tolerance,
        revise_ratio=args.revise_ratio,
    )
    if args.warm_state is not None:
        manifest = session.load_warm_state(args.warm_state)
        log.info(f"booted warm from {args.warm_state} "
                 f"({manifest['dense_views']} dense / {manifest['ell_views']} ELL "
                 f"views, {manifest['cache_entries']} cache fills) in "
                 f"{session.warmup_seconds * 1e3:.1f} ms")
    if args.async_transport:
        server = AsyncInferenceServer(
            session,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1e3,
            queue_limit=args.queue_limit,
            on_full=args.on_full,
        )
    else:
        server = InferenceServer(
            session,
            max_batch=args.max_batch,
            max_wait_s=args.max_wait_ms / 1e3,
            queue_limit=args.queue_limit,
        )
    slo_tracker = None
    if args.slo:
        from repro.obs import SloPolicy, SloTracker

        slo_tracker = SloTracker(
            SloPolicy.parse(args.slo),
            metrics=getattr(session, "scoped", session.metrics),
            name=args.benchmark,
        )
        # every resolved ticket (failures included) feeds the tracker
        server.batcher.on_resolve = slo_tracker.record_ticket
    obs_server = _start_obs_endpoint(
        args,
        session.metrics,
        slo_provider=(
            (lambda: {args.benchmark: slo_tracker.report().to_json()})
            if slo_tracker is not None
            else None
        ),
    )
    report = server.serve(iter(stream), interarrivals=interarrivals)
    summary = report.summary()
    transport = "async" if args.async_transport else "sync"
    log.info(f"served {summary['served']}/{summary['requests']} requests "
             f"({summary['rejected']} rejected, status={summary['status']}) "
             f"on {args.benchmark} [{transport}] "
             f"in {summary['wall_seconds'] * 1e3:.1f} ms")
    log.info(f"  throughput   {summary['requests_per_second']:9.1f} req/s   "
             f"{summary['columns_per_second']:9.1f} col/s")
    lat = summary["latency_seconds"]
    if lat is not None:
        log.info(f"  latency      p50 {lat['p50'] * 1e3:7.2f} ms   "
                 f"p95 {lat['p95'] * 1e3:7.2f} ms   max {lat['p100'] * 1e3:7.2f} ms")
    if args.async_transport:
        log.info(f"  overlap      {summary['overlap_fraction']:.0%} of wall time busy "
                 f"({summary['exec_seconds'] * 1e3:.1f} ms executing, "
                 f"{summary['arrival_seconds'] * 1e3:.1f} ms arrival gaps, "
                 f"{summary['failed']} failed)")
    batcher = server.batcher.stats()
    log.info(f"  batching     {batcher['batches']} blocks, "
             f"mean fill {batcher['mean_fill']:.0%} of {batcher['max_batch']}")
    if session.reuse is not None:
        cache = session.reuse.stats()
        outcomes = batcher.get("reuse_blocks", {})
        log.info(f"  reuse        {cache['hits']} hits / {cache['misses']} misses / "
                 f"{sum(cache['invalidations'].values())} invalidations "
                 f"(blocks: {outcomes or 'none'})")
    stage = session.stats()["stage_seconds"]
    for name, seconds in stage.items():
        log.info(f"  {name:18s} {seconds * 1e3:9.1f} ms")
    if slo_tracker is not None:
        slo = slo_tracker.report()
        est = slo.latency_estimate_s
        est_text = f"{est * 1e3:.2f} ms" if est is not None else "n/a"
        log.info(f"  SLO          {slo.policy.describe()}: "
                 f"p{slo.policy.quantile * 100:g}≈{est_text}, "
                 f"burn {slo.burn_rate:.2f}, compliant={slo.compliant}")
    # the session always keeps a registry; --metrics asks for the exposition
    if args.metrics:
        log.info(session.metrics.to_prometheus().rstrip("\n"))
    if tracer is not None:
        path = tracer.write_chrome(args.trace)
        log.info(f"wrote Chrome trace to {path} ({len(tracer)} spans)")
    _finish_obs_endpoint(args, obs_server)
    return 0


def _cmd_warmup(args) -> int:
    """Save a warm-state artifact, or verify one loads (``--load``)."""
    import dataclasses

    from repro.serve import EngineSession, InferenceServer
    from repro.serve.bench import _shape_stream, _split_requests, _tier_workload

    if (args.save is None) == (args.load is None):
        log.error("warmup wants exactly one of --save PATH or --load PATH")
        return 2
    prime = max(args.prime, 0) if args.save is not None else 0
    net, cfg, pool = _tier_workload(
        args.benchmark, max(prime, 1) * args.request_cols, args.seed
    )
    if args.threshold is not None:
        cfg = dataclasses.replace(cfg, threshold_layer=args.threshold)
    net.drop_views()
    session = EngineSession(
        net, cfg, warm=args.save is not None,
        centroid_reuse=args.centroid_reuse,
        reuse_tolerance=args.reuse_tolerance,
        revise_ratio=args.revise_ratio,
    )

    if args.load is not None:
        t0 = time.perf_counter()
        manifest = session.load_warm_state(args.load)
        log.info(f"loaded {args.load} ({manifest['size_bytes']} bytes) in "
                 f"{(time.perf_counter() - t0) * 1e3:.1f} ms: "
                 f"{manifest['dense_views']} dense / {manifest['ell_views']} ELL "
                 f"views, {manifest['plan_layers']} plan layers, "
                 f"{manifest['memo_choices']} memo choices, "
                 f"{manifest['memo_costs']} cost baselines, "
                 f"{manifest['cache_entries']} cache fills adopted "
                 f"({manifest['cache_skipped']} skipped)")
        return 0

    if prime > 0:
        # priming traffic teaches the session what warmup alone cannot:
        # centroid-cache fills with staleness baselines, per-bucket costs
        shaped = _shape_stream(pool, "repeat", args.max_batch)
        server = InferenceServer(
            session, max_batch=args.max_batch, max_wait_s=60.0,
            queue_limit=prime,
        )
        server.serve(iter(_split_requests(shaped, args.request_cols)))
    manifest = session.save_warm_state(args.save)
    log.info(f"saved {args.save} ({manifest['size_bytes']} bytes) for "
             f"{net.name} [{manifest['fingerprint']}]: "
             f"{manifest['dense_views']} dense / {manifest['ell_views']} ELL "
             f"views, {manifest['plan_layers']} plan layers, "
             f"{manifest['memo_costs']} cost baselines, "
             f"{manifest['cache_entries']} cache fills "
             f"({prime} priming requests)")
    return 0


def _cmd_bench_serve(args) -> int:
    from repro.serve.bench import bench_serve

    if args.tiers == "none":
        tiers = ()  # scale-out-only capture: skip the per-tier records
    elif args.tiers:
        tiers = tuple(t.strip() for t in args.tiers.split(","))
    else:
        tiers = None
    scale_out = (
        tuple(int(n) for n in args.scale_out.split(","))
        if args.scale_out
        else None
    )
    multi_tiers = (
        tuple(t.strip() for t in args.multi_tiers.split(","))
        if args.multi_tiers
        else None
    )
    extra = {}
    if args.slo is not None:
        extra["slo"] = args.slo
    result = bench_serve(
        benchmark=args.benchmark,
        requests=args.requests,
        request_cols=args.request_cols,
        max_batch=args.max_batch,
        threshold=args.threshold,
        seed=args.seed,
        out=args.out,
        trace=args.trace,
        tiers=tiers,
        stream=args.stream,
        centroid_reuse=args.centroid_reuse,
        reuse_tolerance=args.reuse_tolerance,
        async_ab=not args.no_async_ab,
        arrival_rate=args.arrival_rate,
        multi=args.multi or multi_tiers is not None,
        multi_tiers=multi_tiers,
        memory_budget_mb=args.memory_budget_mb,
        scale_out=scale_out,
        scale_out_requests=args.scale_out_requests,
        warm_boot=args.warm_boot,
        qos=args.qos,
        **extra,
    )
    for record in result["tiers"]:
        cold, warm = record["cold"], record["warm"]
        log.info(f"bench-serve [{record['tier']}] on {record['benchmark']} "
                 f"({args.stream}): {record['requests']} requests "
                 f"x {record['request_cols']} columns")
        log.info(f"  cold (engine per request) {cold['requests_per_second']:9.1f} req/s")
        log.info(f"  warm (session + batching) {warm['requests_per_second']:9.1f} req/s")
        log.info(f"  speedup {record['speedup']:.2f}x   "
                 f"categories_match={record['categories_match']}")
        ab = record.get("async")
        if ab is not None:
            log.info(f"  open loop @ {ab['arrival_rate_rps']:.0f} req/s: "
                     f"sync {ab['sync']['requests_per_second']:9.1f} req/s   "
                     f"async {ab['async']['requests_per_second']:9.1f} req/s   "
                     f"({ab['speedup_vs_sync']:.2f}x, overlap "
                     f"{ab['async']['overlap_fraction']:.0%}, "
                     f"identical={ab['outputs_identical']})")
        reuse = record.get("reuse")
        if reuse is not None:
            cache = reuse["cache"]
            log.info(f"  reuse on ({cache['hits']} hits, "
                     f"{sum(cache['invalidations'].values())} invalidations) "
                     f"{reuse['warm']['requests_per_second']:9.1f} req/s   "
                     f"{reuse['speedup_vs_warm']:.2f}x warm   "
                     f"identical={reuse['outputs_identical']}")
        if args.metrics:
            log.info(json.dumps(record["metrics"], indent=2))
    mrec = result.get("multi")
    if mrec is not None:
        log.info(f"bench-serve [multi] {', '.join(mrec['tenants'])}: "
                 f"{mrec['router']['served']}/{mrec['router']['requests']} served, "
                 f"status={mrec['router']['status']}, "
                 f"isolation_identical={mrec['isolation_identical']}")
        for name, per in mrec["per_tenant"].items():
            log.info(f"  [{name}] {per['columns_per_second']:9.1f} col/s mixed "
                     f"vs {per['single_tenant_columns_per_second']:9.1f} col/s alone   "
                     f"hol_stalls={per['hol_stalls']}   "
                     f"identical={per['isolation_identical']}")
            slo = per.get("slo")
            if slo is not None:
                est = slo["latency_estimate_s"]
                est_text = f"{est * 1e3:.2f} ms" if est is not None else "n/a"
                log.info(f"  [{name}] SLO {slo['policy']['describe']}: "
                         f"p{slo['policy']['quantile'] * 100:g}≈{est_text}, "
                         f"burn {slo['burn_rate']:.2f}, "
                         f"compliant={slo['compliant']}")
        budget = mrec["budget"]
        if budget["limit_bytes"] is not None:
            log.info(f"  budget {budget['retained_bytes']} / {budget['limit_bytes']} "
                     f"bytes (highwater {budget['highwater_bytes']}, "
                     f"under_budget={mrec['under_budget']}, "
                     f"{budget['evictions']} demotions)")
    wrec = result.get("warm_boot")
    if wrec is not None:
        log.info(f"bench-serve [warm-boot] {wrec['benchmark']}: cold ready "
                 f"{wrec['cold']['ready_seconds'] * 1e3:.1f} ms "
                 f"(warmup {wrec['cold']['warmup_seconds'] * 1e3:.1f} + prime "
                 f"{wrec['cold']['prime_seconds'] * 1e3:.1f}) vs artifact load "
                 f"{wrec['artifact']['load_seconds'] * 1e3:.1f} ms "
                 f"({wrec['artifact']['size_bytes']} bytes) — "
                 f"{wrec['speedup']:.1f}x, "
                 f"identical={wrec['outputs_identical']}")
    qrec = result.get("qos")
    if qrec is not None:
        log.info(f"bench-serve [qos] interactive={qrec['interactive_tier']} "
                 f"vs bulk={qrec['bulk_tier']} "
                 f"({qrec['bulk_requests']} bulk requests, quota admits "
                 f"{qrec['bulk_admit']}):")
        for arm_key, label in (("with_qos", "qos"), ("no_qos", "fifo")):
            arm = qrec[arm_key]
            inter = arm["per_tenant"]["interactive"]
            bulk = arm["per_tenant"]["bulk"]
            p99 = (inter["latency_seconds"] or {}).get("p99")
            ratio = arm["interactive_p99_ratio"]
            p99_text = f"{p99 * 1e3:7.2f} ms" if p99 is not None else "n/a"
            ratio_text = f"{ratio:.2f}x solo" if ratio is not None else "n/a"
            log.info(f"  [{label:4s}] interactive p99 {p99_text} "
                     f"({ratio_text})   bulk served {bulk['served']}/"
                     f"{bulk['submitted']} (shed {bulk['shed']})")
        log.info(f"  identical={qrec['outputs_identical']}   "
                 f"shed_accounting_ok={qrec['shed_accounting_ok']}")
    srec = result.get("scale_out")
    if srec is not None:
        log.info(f"bench-serve [scale-out] {srec['benchmark']}: "
                 f"{srec['requests']} requests over {srec['streams']} streams "
                 f"(host cpu_count={srec['cpu_count']})")
        for entry in srec["workers"]:
            cap = entry["capacity"]
            log.info(f"  {entry['workers']}w  "
                     f"wall {entry['wall_columns_per_second']:9.1f} col/s "
                     f"({entry['wall_speedup_vs_single']:.2f}x)   "
                     f"capacity {cap['columns_per_second']:9.1f} col/s "
                     f"({cap['speedup_vs_single']:.2f}x)   "
                     f"identical={entry['outputs_identical']}   "
                     f"restarts={entry['restarts']}")
        crash = srec.get("crash")
        if crash is not None:
            log.info(f"  crash@{crash['workers']}w (worker {crash['victim']} "
                     f"SIGKILLed mid-stream): recovered={crash['recovered']}, "
                     f"restarts={crash['restarts']}, "
                     f"replayed={sum(crash['replayed'])}, "
                     f"failed={crash['failed']}, "
                     f"identical={crash['outputs_identical']}")
    if args.trace:
        log.info(f"wrote Chrome trace to {args.trace}")
    log.info(f"wrote {args.out}")
    return 0


def _add_reuse_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--centroid-reuse", action="store_true",
        help="carry layer-t centroids across blocks (assign-only conversion "
             "on warm hits); bench-serve then records an A/B reuse pass",
    )
    parser.add_argument(
        "--reuse-tolerance", type=float, default=0.5, metavar="T",
        help="staleness budget: reused blocks must stay within "
             "baseline*(1+T) assignment distance / residue density "
             "(default 0.5; 0 admits only blocks as tight as the fill block)",
    )
    parser.add_argument(
        "--revise-ratio", type=float, default=None, metavar="R",
        help="arm the strategy memo's measure-and-revise loop: when a "
             "bucket's observed cost EWMA drifts past baseline*R (R > 1), "
             "its memoized kernel choice is re-derived (default: replay "
             "the first decision forever)",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event file (Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the metrics exposition after the command",
    )


def _add_endpoint_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--obs-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus), /slo (JSON), and /healthz on "
             "localhost:PORT while the command runs (0 picks a free port)",
    )
    parser.add_argument(
        "--obs-hold-s", type=float, default=0.0, metavar="S",
        help="keep the obs endpoint up S seconds after serving finishes, "
             "so external scrapers (CI smoke jobs) can read the final state",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SNICIT reproduction command-line interface"
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="debug-level logging")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="warnings only (wins over --verbose)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registry benchmarks").set_defaults(fn=_cmd_list)

    run_p = sub.add_parser("run", help="run one engine on one benchmark")
    run_p.add_argument("benchmark")
    run_p.add_argument("--engine", default="snicit",
                       choices=("snicit", "dense", "bf2019", "snig2020", "xy2021"))
    run_p.add_argument("--batch", type=int, default=1000)
    run_p.add_argument("--threshold", type=int, default=None)
    run_p.add_argument("--json", action="store_true",
                       help="print the full JSON-safe result report on stdout")
    _add_obs_flags(run_p)
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser("compare", help="SNICIT vs the champion baselines")
    cmp_p.add_argument("benchmark")
    cmp_p.add_argument("--batch", type=int, default=1000)
    cmp_p.set_defaults(fn=_cmd_compare)

    exp_p = sub.add_parser("experiment", help="regenerate one table/figure")
    exp_p.add_argument("name", choices=EXPERIMENTS)
    exp_p.add_argument("--scale", type=float, default=None)
    exp_p.add_argument("--out", default=None, help="also write the report here")
    exp_p.set_defaults(fn=_cmd_experiment)

    gen_p = sub.add_parser("generate", help="write a benchmark as SDGC .tsv files")
    gen_p.add_argument("benchmark")
    gen_p.add_argument("out_dir")
    gen_p.add_argument("--seed", type=int, default=0)
    gen_p.set_defaults(fn=_cmd_generate)

    serve_p = sub.add_parser(
        "serve", help="micro-batched serving loop over a synthetic request stream"
    )
    serve_p.add_argument(
        "benchmark", nargs="?", default=None,
        help="single benchmark to serve; omit when routing with --model",
    )
    serve_p.add_argument(
        "--model", action="append", default=None, metavar="NAME=BENCHMARK",
        help="register a named tenant (repeatable); switches serve into "
             "multi-model routing through a ModelRegistry + Router",
    )
    serve_p.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="shared retained-bytes budget across all tenants; the router "
             "demotes least-recently-served sessions warm-to-cold to stay "
             "under it (default: unlimited)",
    )
    serve_p.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="serve through a multi-process fleet of N supervised workers "
             "(spawn-safe): streams shard stably to workers, crashed workers "
             "restart with stream replay, and telemetry is merged into one "
             "scrape (see repro.serve.fleet)",
    )
    serve_p.add_argument(
        "--streams", type=_positive_int, default=8, metavar="S",
        help="synthetic stream count per tenant for --workers serving; "
             "requests round-robin over streams and each stream pins to one "
             "worker, keeping per-stream outputs bitwise deterministic",
    )
    serve_p.add_argument("--requests", type=_positive_int, default=128)
    serve_p.add_argument("--request-cols", type=_positive_int, default=2)
    serve_p.add_argument("--max-batch", type=_positive_int, default=64)
    serve_p.add_argument("--max-wait-ms", type=float, default=2.0)
    serve_p.add_argument("--queue-limit", type=_positive_int, default=1024)
    serve_p.add_argument("--threshold", type=int, default=None)
    serve_p.add_argument("--seed", type=int, default=1)
    serve_p.add_argument(
        "--async-transport", action="store_true",
        help="serve through the threaded AsyncInferenceServer: arrivals "
             "overlap block execution and max-wait flushes partial blocks",
    )
    serve_p.add_argument(
        "--arrival-rate", type=float, default=None, metavar="RPS",
        help="open-loop Poisson arrival rate in requests/second (seeded); "
             "default submits back-to-back (closed loop)",
    )
    serve_p.add_argument(
        "--on-full", default="reject", choices=("reject", "block"),
        help="async backpressure on a full intake queue: reject with "
             "ServeOverflowError or block the producer (default reject)",
    )
    serve_p.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="latency SLO to track live, e.g. 'p99<50ms@60s/99%%'; applied "
             "per tenant under --model, to the single benchmark otherwise",
    )
    serve_p.add_argument(
        "--warm-state", default=None, metavar="PATH",
        help="boot warm from a repro-warmstore artifact (see 'repro warmup "
             "--save') instead of baking at startup; fingerprint-checked, "
             "and under --workers every worker — including crash-restarted "
             "ones — loads the same file",
    )
    serve_p.add_argument(
        "--qos", action="append", default=None, metavar="NAME=SPEC",
        help="per-tenant QoS policy (repeatable), e.g. a=interactive or "
             "b='batch:w=2,rate=512,burst=1024' — priority class "
             "(interactive beats batch), deficit-round-robin weight, and a "
             "token-bucket rate limit in columns/second; tenants default to "
             "interactive with weight 1 and no limit.  Applies to --model "
             "and --workers tenants",
    )
    _add_reuse_flags(serve_p)
    _add_obs_flags(serve_p)
    _add_endpoint_flags(serve_p)
    serve_p.set_defaults(fn=_cmd_serve)

    bserve_p = sub.add_parser(
        "bench-serve",
        help="tiered cold vs warm serving throughput (writes BENCH_serve.json)",
    )
    bserve_p.add_argument(
        "benchmark", nargs="?", default=None,
        help="single SDGC benchmark to run as an ad-hoc tier "
             "(default: the built-in tier list)",
    )
    bserve_p.add_argument(
        "--tiers", default=None,
        help="comma-separated tier list (e.g. sdgc-shallow,medium-A); "
             "'none' skips the per-tier records (scale-out-only capture); "
             "mutually exclusive with the positional benchmark",
    )
    bserve_p.add_argument(
        "--scale-out", default=None, metavar="COUNTS",
        help="comma-separated worker counts (e.g. 1,2,4): append the "
             "schema-4 multi-process fleet curve — per-count wall and "
             "capacity throughput, bitwise output checks against a "
             "single-process reference, and a crash-recovery run at the "
             "largest count",
    )
    bserve_p.add_argument(
        "--scale-out-requests", type=_positive_int, default=None, metavar="R",
        help="request count for the scale-out record (default: "
             "max(--requests, 192), so per-worker fixed costs amortize)",
    )
    bserve_p.add_argument("--requests", type=_positive_int, default=48)
    bserve_p.add_argument("--request-cols", type=_positive_int, default=4)
    bserve_p.add_argument("--max-batch", type=_positive_int, default=64)
    bserve_p.add_argument("--threshold", type=int, default=None)
    bserve_p.add_argument("--seed", type=int, default=1)
    bserve_p.add_argument(
        "--stream", default="mix", choices=("mix", "repeat", "drift"),
        help="request-stream shape: distinct columns, identical blocks, "
             "or a mid-stream amplitude shift",
    )
    bserve_p.add_argument("--out", default="BENCH_serve.json")
    bserve_p.add_argument(
        "--no-async-ab", action="store_true",
        help="skip the per-tier open-loop sync-vs-async transport A/B",
    )
    bserve_p.add_argument(
        "--arrival-rate", type=float, default=None, metavar="RPS",
        help="Poisson arrival rate for the sync-vs-async A/B "
             "(default: auto-paced to each tier's warm service rate)",
    )
    bserve_p.add_argument(
        "--multi", action="store_true",
        help="append the mixed-traffic multi-tenant record: round-robin "
             "stream over several tenants with a per-tenant bitwise "
             "isolation check against single-tenant references",
    )
    bserve_p.add_argument(
        "--multi-tiers", default=None, metavar="TIERS",
        help="comma-separated tenant tiers for --multi "
             "(default: the built-in multi-tier pair); implies --multi",
    )
    bserve_p.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="shared memory budget for the --multi record; the router "
             "demotes LRU tenants to stay under it (default: unlimited)",
    )
    bserve_p.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="per-tenant SLO for the --multi record "
             "(default: the built-in p99<250ms@30s/95%% policy)",
    )
    bserve_p.add_argument(
        "--warm-boot", dest="warm_boot", action="store_true", default=None,
        help="force the schema-5 persistent-warmup record (artifact boot vs "
             "cold warmup + priming; default: on whenever tiers run)",
    )
    bserve_p.add_argument(
        "--no-warm-boot", dest="warm_boot", action="store_false",
        help="skip the persistent-warmup record",
    )
    bserve_p.add_argument(
        "--qos", action="store_true",
        help="append the schema-6 QoS A/B record: an interactive tenant's "
             "p99 while a quota-limited bulk tenant saturates the same "
             "router, under the priority scheduler and under plain FIFO, "
             "with bitwise output checks and shed accounting",
    )
    _add_reuse_flags(bserve_p)
    _add_obs_flags(bserve_p)
    bserve_p.set_defaults(fn=_cmd_bench_serve)

    warm_p = sub.add_parser(
        "warmup",
        help="save (or verify) a persistent warm-state artifact for a benchmark",
    )
    warm_p.add_argument(
        "benchmark",
        help="SDGC benchmark name (e.g. 144-24), a bench tier name, or "
             "'medium:<id>' for a trained medium-scale model",
    )
    warm_p.add_argument(
        "--save", default=None, metavar="PATH",
        help="warm a session (bake + optional priming traffic) and snapshot "
             "its state to PATH as a repro-warmstore artifact",
    )
    warm_p.add_argument(
        "--load", default=None, metavar="PATH",
        help="boot a cold session from the artifact at PATH and report what "
             "it restored (fingerprint/version checked) — a deploy preflight",
    )
    warm_p.add_argument(
        "--prime", type=int, default=16, metavar="N",
        help="requests of seeded priming traffic to serve before saving, so "
             "the artifact carries centroid-cache fills and measured cost "
             "baselines, not just baked views (0 saves bake-only state)",
    )
    warm_p.add_argument("--request-cols", type=_positive_int, default=4)
    warm_p.add_argument("--max-batch", type=_positive_int, default=64)
    warm_p.add_argument("--threshold", type=int, default=None)
    warm_p.add_argument("--seed", type=int, default=1)
    _add_reuse_flags(warm_p)
    warm_p.set_defaults(fn=_cmd_warmup)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_logging(verbose=args.verbose, quiet=args.quiet)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
