"""Device memory buffers with allocation tracking and transfer accounting.

A :class:`DeviceBuffer` wraps a NumPy array that "lives on" a
:class:`~repro.gpu.device.VirtualDevice`.  Allocation is bounded by the device
memory size (the paper sizes batches so the A6000's 48 GB is not exceeded —
Section 4.1.1 — and we reproduce that constraint), and host-device transfers
are charged against the cost model's PCIe bandwidth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DeviceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpu.device import VirtualDevice

__all__ = ["DeviceBuffer", "BufferPool", "MemoryBudget"]


class BufferPool:
    """Reusable host-side scratch arrays keyed by ``(shape, dtype)``.

    Warm engine sessions run the same network shape call after call; the pool
    keeps a small number of arrays per shape alive so per-layer outputs stop
    churning the allocator.  ``take`` hands back an existing buffer of the
    requested shape — skipping any array in ``avoid`` so an spMM never writes
    into its own input — or allocates a new one (retained up to
    ``slots_per_key``).  Contents are unspecified; every kernel's ``out=``
    path zero-fills before accumulating.
    """

    def __init__(self, slots_per_key: int = 2):
        if slots_per_key < 1:
            raise DeviceError(f"slots_per_key must be >= 1, got {slots_per_key}")
        self.slots_per_key = int(slots_per_key)
        self._bufs: dict[tuple, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self._take_counter = None
        self._hit_counter = None
        self._alloc_counter = None
        self._highwater_gauge = None

    def bind_metrics(self, registry) -> "BufferPool":
        """Publish pool activity on a :class:`~repro.obs.MetricsRegistry`.

        ``pool_take_total``/``pool_hit_total``/``pool_alloc_total`` count
        requests, recycled hands-back, and fresh allocations;
        ``pool_bytes_highwater`` tracks the largest retained footprint.
        """
        self._take_counter = registry.counter(
            "pool_take_total", help="buffer requests served by the pool"
        )
        self._hit_counter = registry.counter(
            "pool_hit_total", help="buffer requests satisfied by a recycled array"
        )
        self._alloc_counter = registry.counter(
            "pool_alloc_total", help="buffer requests that allocated a fresh array"
        )
        self._highwater_gauge = registry.gauge(
            "pool_bytes_highwater", help="largest retained pool footprint in bytes"
        )
        self._highwater_gauge.set_max(self.nbytes)
        return self

    def take(
        self,
        shape: tuple[int, ...],
        dtype=np.float32,
        avoid: tuple[np.ndarray, ...] | np.ndarray | None = None,
    ) -> np.ndarray:
        if isinstance(avoid, np.ndarray):
            avoid = (avoid,)
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        bufs = self._bufs.setdefault(key, [])
        if self._take_counter is not None:
            self._take_counter.inc()
        for buf in bufs:
            if not any(buf is a for a in avoid or ()):
                self.hits += 1
                if self._hit_counter is not None:
                    self._hit_counter.inc()
                return buf
        self.misses += 1
        buf = np.empty(key[0], dtype=dtype)
        if len(bufs) < self.slots_per_key:
            bufs.append(buf)
        if self._alloc_counter is not None:
            self._alloc_counter.inc()
            self._highwater_gauge.set_max(self.nbytes)
        return buf

    def owns(self, array: np.ndarray) -> bool:
        """True if ``array`` is one of the pool's retained buffers."""
        return any(array is buf for bufs in self._bufs.values() for buf in bufs)

    def clear(self) -> int:
        """Drop every retained buffer; returns the bytes released.

        Safe at any point between blocks: pool contents are unspecified by
        contract (kernels zero-fill their ``out=``), so clearing can never
        change results — only the next block's allocation count.  This is
        the warm-to-cold demotion hook a :class:`MemoryBudget` eviction
        pulls.
        """
        freed = self.nbytes
        self._bufs.clear()
        return freed

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for bufs in self._bufs.values() for buf in bufs)

    def stats(self) -> dict[str, int]:
        return {
            "shapes": len(self._bufs),
            "buffers": sum(len(b) for b in self._bufs.values()),
            "nbytes": self.nbytes,
            "hits": self.hits,
            "misses": self.misses,
        }


class MemoryBudget:
    """Process-wide accounting of retained bytes across named accounts.

    A multi-model server runs many warm :class:`~repro.serve.EngineSession`\\ s,
    each retaining scratch (its :class:`BufferPool`), pinned weight views
    (:meth:`~repro.network.SparseNetwork.view_nbytes`), and cached
    conversions (:attr:`~repro.core.reuse.CentroidCache.nbytes`).  The
    budget meters the sum and tells the router *when* to demote; the router
    decides *whom* (LRU) and performs the demotion, then reports the new
    footprints back via :meth:`update`.  ``limit_bytes=None`` means
    metering only — never over budget.

    The budget itself holds no arrays, so it cannot leak: it is a ledger of
    what the accounts said they retain, refreshed by the owner after every
    request and after every eviction.
    """

    def __init__(self, limit_bytes: int | None = None):
        if limit_bytes is not None and limit_bytes < 0:
            raise DeviceError(f"limit_bytes must be >= 0, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes) if limit_bytes is not None else None
        self._accounts: dict[str, int] = {}
        self.evictions = 0
        self.highwater_bytes = 0
        self._g_retained = None
        self._g_highwater = None
        self._c_evictions = None

    def bind_metrics(self, registry) -> "MemoryBudget":
        """Publish the ledger on a :class:`~repro.obs.MetricsRegistry`.

        ``memory_budget_limit_bytes`` / ``memory_budget_retained_bytes`` /
        ``memory_budget_highwater_bytes`` gauges plus a
        ``memory_budget_evictions_total`` counter.  The highwater gauge is
        advanced by :meth:`publish` — the owner calls it *after* enforcement
        so the published peak reflects steady state under the budget, not
        the transient between a fill and the eviction it triggered.
        """
        registry.gauge(
            "memory_budget_limit_bytes", help="configured retained-bytes budget (0 = unlimited)"
        ).set(self.limit_bytes or 0)
        self._g_retained = registry.gauge(
            "memory_budget_retained_bytes", help="retained bytes across all accounts"
        )
        self._g_highwater = registry.gauge(
            "memory_budget_highwater_bytes",
            help="largest retained footprint observed after budget enforcement",
        )
        self._c_evictions = registry.counter(
            "memory_budget_evictions_total", help="sessions demoted warm-to-cold by the budget"
        )
        return self

    def update(self, name: str, nbytes: int) -> None:
        """Set account ``name``'s retained footprint (absolute, not a delta)."""
        self._accounts[name] = int(nbytes)

    def drop(self, name: str) -> None:
        """Forget an account entirely (the session was evicted/closed)."""
        self._accounts.pop(name, None)

    @property
    def retained_bytes(self) -> int:
        return sum(self._accounts.values())

    @property
    def over_budget(self) -> bool:
        return self.limit_bytes is not None and self.retained_bytes > self.limit_bytes

    def account_bytes(self) -> dict[str, int]:
        """The ledger, account by account (a copy)."""
        return dict(self._accounts)

    def record_eviction(self, n: int = 1) -> None:
        self.evictions += n
        if self._c_evictions is not None:
            self._c_evictions.inc(n)

    def publish(self) -> int:
        """Refresh gauges and the high-water mark; returns retained bytes.

        Call after enforcement has settled so the high-water mark certifies
        "stayed under budget" rather than recording the pre-eviction spike.
        """
        retained = self.retained_bytes
        if retained > self.highwater_bytes:
            self.highwater_bytes = retained
        if self._g_retained is not None:
            self._g_retained.set(retained)
            self._g_highwater.set_max(self.highwater_bytes)
        return retained

    def stats(self) -> dict:
        return {
            "limit_bytes": self.limit_bytes,
            "retained_bytes": self.retained_bytes,
            "highwater_bytes": self.highwater_bytes,
            "evictions": self.evictions,
            "accounts": self.account_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limit = "unlimited" if self.limit_bytes is None else self.limit_bytes
        return (
            f"MemoryBudget(retained={self.retained_bytes}, limit={limit}, "
            f"accounts={len(self._accounts)})"
        )


class DeviceBuffer:
    """An array allocated in a virtual device's memory space.

    Do not construct directly; use :meth:`VirtualDevice.alloc`,
    :meth:`VirtualDevice.to_device`, or :meth:`VirtualDevice.zeros`.
    """

    __slots__ = ("_device", "_array", "_freed")

    def __init__(self, device: "VirtualDevice", array: np.ndarray):
        self._device = device
        self._array = array
        self._freed = False

    @property
    def device(self) -> "VirtualDevice":
        return self._device

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    @property
    def array(self) -> np.ndarray:
        """The backing array.  Kernels operate on this in place."""
        if self._freed:
            raise DeviceError("use of freed device buffer")
        return self._array

    def to_host(self) -> np.ndarray:
        """Copy device data back to the host (charged as a D2H transfer)."""
        arr = self.array
        self._device.cost.charge_d2h(arr.nbytes)
        return arr.copy()

    def copy_from_host(self, host: np.ndarray) -> None:
        """Overwrite device contents with host data (charged as H2D)."""
        arr = self.array
        if host.shape != arr.shape:
            raise DeviceError(f"H2D shape mismatch: {host.shape} -> {arr.shape}")
        arr[...] = host
        self._device.cost.charge_h2d(arr.nbytes)

    def free(self) -> None:
        """Release the allocation.  Further access raises :class:`DeviceError`."""
        if not self._freed:
            self._device._release(self._array.nbytes)
            self._freed = True

    @property
    def freed(self) -> bool:
        return self._freed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._freed else f"{self._array.shape} {self._array.dtype}"
        return f"DeviceBuffer({state})"
