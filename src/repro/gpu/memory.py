"""Device memory buffers with allocation tracking and transfer accounting.

A :class:`DeviceBuffer` wraps a NumPy array that "lives on" a
:class:`~repro.gpu.device.VirtualDevice`.  Allocation is bounded by the device
memory size (the paper sizes batches so the A6000's 48 GB is not exceeded —
Section 4.1.1 — and we reproduce that constraint), and host-device transfers
are charged against the cost model's PCIe bandwidth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import DeviceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpu.device import VirtualDevice

__all__ = ["DeviceBuffer", "BufferPool"]


class BufferPool:
    """Reusable host-side scratch arrays keyed by ``(shape, dtype)``.

    Warm engine sessions run the same network shape call after call; the pool
    keeps a small number of arrays per shape alive so per-layer outputs stop
    churning the allocator.  ``take`` hands back an existing buffer of the
    requested shape — skipping any array in ``avoid`` so an spMM never writes
    into its own input — or allocates a new one (retained up to
    ``slots_per_key``).  Contents are unspecified; every kernel's ``out=``
    path zero-fills before accumulating.
    """

    def __init__(self, slots_per_key: int = 2):
        if slots_per_key < 1:
            raise DeviceError(f"slots_per_key must be >= 1, got {slots_per_key}")
        self.slots_per_key = int(slots_per_key)
        self._bufs: dict[tuple, list[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self._take_counter = None
        self._hit_counter = None
        self._alloc_counter = None
        self._highwater_gauge = None

    def bind_metrics(self, registry) -> "BufferPool":
        """Publish pool activity on a :class:`~repro.obs.MetricsRegistry`.

        ``pool_take_total``/``pool_hit_total``/``pool_alloc_total`` count
        requests, recycled hands-back, and fresh allocations;
        ``pool_bytes_highwater`` tracks the largest retained footprint.
        """
        self._take_counter = registry.counter(
            "pool_take_total", help="buffer requests served by the pool"
        )
        self._hit_counter = registry.counter(
            "pool_hit_total", help="buffer requests satisfied by a recycled array"
        )
        self._alloc_counter = registry.counter(
            "pool_alloc_total", help="buffer requests that allocated a fresh array"
        )
        self._highwater_gauge = registry.gauge(
            "pool_bytes_highwater", help="largest retained pool footprint in bytes"
        )
        self._highwater_gauge.set_max(self.nbytes)
        return self

    def take(
        self,
        shape: tuple[int, ...],
        dtype=np.float32,
        avoid: tuple[np.ndarray, ...] | np.ndarray | None = None,
    ) -> np.ndarray:
        if isinstance(avoid, np.ndarray):
            avoid = (avoid,)
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        bufs = self._bufs.setdefault(key, [])
        if self._take_counter is not None:
            self._take_counter.inc()
        for buf in bufs:
            if not any(buf is a for a in avoid or ()):
                self.hits += 1
                if self._hit_counter is not None:
                    self._hit_counter.inc()
                return buf
        self.misses += 1
        buf = np.empty(key[0], dtype=dtype)
        if len(bufs) < self.slots_per_key:
            bufs.append(buf)
        if self._alloc_counter is not None:
            self._alloc_counter.inc()
            self._highwater_gauge.set_max(self.nbytes)
        return buf

    def owns(self, array: np.ndarray) -> bool:
        """True if ``array`` is one of the pool's retained buffers."""
        return any(array is buf for bufs in self._bufs.values() for buf in bufs)

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for bufs in self._bufs.values() for buf in bufs)

    def stats(self) -> dict[str, int]:
        return {
            "shapes": len(self._bufs),
            "buffers": sum(len(b) for b in self._bufs.values()),
            "nbytes": self.nbytes,
            "hits": self.hits,
            "misses": self.misses,
        }


class DeviceBuffer:
    """An array allocated in a virtual device's memory space.

    Do not construct directly; use :meth:`VirtualDevice.alloc`,
    :meth:`VirtualDevice.to_device`, or :meth:`VirtualDevice.zeros`.
    """

    __slots__ = ("_device", "_array", "_freed")

    def __init__(self, device: "VirtualDevice", array: np.ndarray):
        self._device = device
        self._array = array
        self._freed = False

    @property
    def device(self) -> "VirtualDevice":
        return self._device

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    @property
    def array(self) -> np.ndarray:
        """The backing array.  Kernels operate on this in place."""
        if self._freed:
            raise DeviceError("use of freed device buffer")
        return self._array

    def to_host(self) -> np.ndarray:
        """Copy device data back to the host (charged as a D2H transfer)."""
        arr = self.array
        self._device.cost.charge_d2h(arr.nbytes)
        return arr.copy()

    def copy_from_host(self, host: np.ndarray) -> None:
        """Overwrite device contents with host data (charged as H2D)."""
        arr = self.array
        if host.shape != arr.shape:
            raise DeviceError(f"H2D shape mismatch: {host.shape} -> {arr.shape}")
        arr[...] = host
        self._device.cost.charge_h2d(arr.nbytes)

    def free(self) -> None:
        """Release the allocation.  Further access raises :class:`DeviceError`."""
        if not self._freed:
            self._device._release(self._array.nbytes)
            self._freed = True

    @property
    def freed(self) -> bool:
        return self._freed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._freed else f"{self._array.shape} {self._array.dtype}"
        return f"DeviceBuffer({state})"
