"""Per-thread kernel execution with CUDA block/thread semantics.

The paper specifies its three kernels (sample pruning, Ŷ/M construction,
centroid+residue update) in CUDA pseudocode with shared memory, barriers,
atomics and ``__syncthreads_count``.  To reproduce them *as written* — and to
validate the fast vectorized twins against them — this module executes kernel
bodies as Python generators with lockstep barrier scheduling:

* A kernel body has signature ``body(ctx, *args)`` and is a generator.
* ``yield SYNC`` is ``__syncthreads()``.
* ``count = yield SyncCount(pred)`` is ``__syncthreads_count(pred)``: a
  barrier whose resume value is the number of live threads in the block whose
  predicate was true.
* ``ctx.shared(name, shape)`` returns a per-block shared array (the same
  object for every thread of the block).
* ``ctx.atomic_add(arr, idx, val)`` performs an atomic read-modify-write
  (trivially atomic here because threads are interleaved cooperatively, but
  counted so the cost model can charge serialization).

Blocks are executed sequentially; threads within a block are interleaved and
synchronized exactly at barriers, which is sufficient to expose every
data-hazard a real GPU would expose *between* barriers for race-free kernels,
and deterministic enough to make tests reproducible.  Threads may return
early (the common ``if tid >= n: return`` guard); a barrier completes when
all still-live threads have arrived.  Divergent barriers (live threads
yielding different barrier kinds) raise :class:`~repro.errors.KernelError`.

This executor is intentionally not fast.  It is the *semantic reference*:
unit tests run the paper's kernels through it at small sizes and assert that
the production vectorized implementations in :mod:`repro.core` compute
identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

import numpy as np

from repro.errors import KernelError
from repro.gpu.costmodel import KernelCharge
from repro.gpu.device import VirtualDevice

__all__ = [
    "SYNC",
    "SyncCount",
    "GridDim",
    "BlockDim",
    "KernelContext",
    "launch_kernel",
]


class _SyncToken:
    """Sentinel for a plain ``__syncthreads()`` barrier."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "SYNC"


SYNC = _SyncToken()


@dataclass(frozen=True)
class SyncCount:
    """Barrier carrying a predicate; resumes with the block-wide true-count."""

    predicate: bool


@dataclass(frozen=True)
class GridDim:
    x: int = 1
    y: int = 1

    def __iter__(self) -> Iterable[int]:
        return iter((self.x, self.y))

    @property
    def size(self) -> int:
        return self.x * self.y


@dataclass(frozen=True)
class BlockDim:
    x: int = 1
    y: int = 1

    def __iter__(self) -> Iterable[int]:
        return iter((self.x, self.y))

    @property
    def size(self) -> int:
        return self.x * self.y


class KernelContext:
    """Per-thread view of the execution: indices, shared memory, atomics."""

    __slots__ = ("bx", "by", "tx", "ty", "block_dim", "grid_dim", "_shared", "_stats")

    def __init__(
        self,
        bx: int,
        by: int,
        tx: int,
        ty: int,
        block_dim: BlockDim,
        grid_dim: GridDim,
        shared: dict[str, np.ndarray],
        stats: dict[str, int],
    ):
        self.bx = bx
        self.by = by
        self.tx = tx
        self.ty = ty
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self._shared = shared
        self._stats = stats

    @property
    def tid(self) -> int:
        """Linearized thread index within the block (x + y * blockDim.x)."""
        return self.tx + self.ty * self.block_dim.x

    def shared(self, name: str, shape: tuple[int, ...] | int, dtype=np.float64) -> np.ndarray:
        """Block-shared array; first caller allocates (zero-initialized)."""
        if name not in self._shared:
            self._shared[name] = np.zeros(shape, dtype=dtype)
        return self._shared[name]

    def atomic_add(self, arr: np.ndarray, index: Any, value) -> Any:
        """Atomic ``arr[index] += value``; returns the old value."""
        self._stats["atomics"] += 1
        old = arr[index]
        arr[index] = old + value
        return old

    def atomic_max(self, arr: np.ndarray, index: Any, value) -> Any:
        self._stats["atomics"] += 1
        old = arr[index]
        if value > old:
            arr[index] = value
        return old


KernelBody = Callable[..., Generator]


def launch_kernel(
    device: VirtualDevice,
    body: KernelBody,
    grid: GridDim | tuple[int, ...] | int,
    block: BlockDim | tuple[int, ...] | int,
    args: tuple = (),
    name: str | None = None,
    charge: KernelCharge | None = None,
) -> KernelCharge:
    """Run ``body`` over the launch geometry and charge the device.

    Returns the :class:`KernelCharge` recorded (either the caller-provided
    explicit charge, augmented with measured atomics/barriers, or a pure
    bookkeeping charge).
    """
    grid = _as_grid(grid)
    block = _as_block(block)
    if block.size <= 0 or grid.size <= 0:
        raise KernelError(f"empty launch geometry grid={grid} block={block}")
    if block.size > device.spec.max_threads_per_block:
        raise KernelError(
            f"block of {block.size} threads exceeds device limit "
            f"{device.spec.max_threads_per_block}"
        )

    stats = {"atomics": 0}
    barriers = 0
    for by in range(grid.y):
        for bx in range(grid.x):
            barriers += _run_block(body, bx, by, block, grid, args, stats)

    kernel_name = name or getattr(body, "__name__", "kernel")
    base = charge or KernelCharge(name=kernel_name)
    recorded = KernelCharge(
        name=kernel_name,
        flops=base.flops,
        bytes_read=base.bytes_read,
        bytes_written=base.bytes_written,
        atomics=base.atomics + stats["atomics"],
        barriers=base.barriers + barriers,
    )
    device.charge(recorded)
    return recorded


def _as_grid(g) -> GridDim:
    if isinstance(g, GridDim):
        return g
    if isinstance(g, int):
        return GridDim(g, 1)
    return GridDim(*g)


def _as_block(b) -> BlockDim:
    if isinstance(b, BlockDim):
        return b
    if isinstance(b, int):
        return BlockDim(b, 1)
    return BlockDim(*b)


def _run_block(
    body: KernelBody,
    bx: int,
    by: int,
    block: BlockDim,
    grid: GridDim,
    args: tuple,
    stats: dict[str, int],
) -> int:
    """Execute one block's threads in lockstep; returns barrier count."""
    shared: dict[str, np.ndarray] = {}
    threads: list[Generator | None] = []
    for ty in range(block.y):
        for tx in range(block.x):
            ctx = KernelContext(bx, by, tx, ty, block, grid, shared, stats)
            threads.append(body(ctx, *args))

    # pending[i] is the value to send into thread i at its next step
    pending: list[Any] = [None] * len(threads)
    barriers = 0
    live = len(threads)
    while live:
        yields: list[tuple[int, Any]] = []
        for i, gen in enumerate(threads):
            if gen is None:
                continue
            try:
                out = gen.send(pending[i]) if pending[i] is not None else next(gen)
            except StopIteration:
                threads[i] = None
                live -= 1
                continue
            pending[i] = None
            yields.append((i, out))
        if not yields:
            break
        barriers += 1
        kinds = {type(v) for _, v in yields}
        if len(kinds) != 1:
            raise KernelError(
                f"divergent barrier in block ({bx},{by}): mixed {sorted(k.__name__ for k in kinds)}"
            )
        kind = kinds.pop()
        if kind is _SyncToken:
            continue  # plain barrier: nothing to send back
        if kind is SyncCount:
            count = sum(1 for _, v in yields if v.predicate)
            for i, _ in yields:
                pending[i] = count
            continue
        raise KernelError(f"kernel yielded unknown barrier object of type {kind.__name__}")
    return barriers
