"""Virtual-GPU execution substrate.

The paper's kernels run on an RTX A6000.  This reproduction has no GPU, so we
model one: :class:`~repro.gpu.device.VirtualDevice` owns a memory space and a
roofline :class:`~repro.gpu.costmodel.CostModel`; :mod:`repro.gpu.kernel`
executes kernel bodies with faithful CUDA block/thread semantics (shared
memory, ``__syncthreads``, ``__syncthreads_count``, atomics) so the paper's
Algorithms 1-3 can be implemented *as written* and cross-checked against fast
vectorized twins; :mod:`repro.gpu.stream` provides streams and a task graph
used by the SNIG-2020 baseline.

The cost model is the bridge between "work done" and "GPU time": every kernel
charges FLOPs and bytes moved, and the device converts the ledger into a
modeled latency with a roofline (max of compute time and memory time) plus a
fixed per-launch overhead.  Benchmarks report both modeled latency and actual
CPU wall-clock.
"""

from repro.gpu.costmodel import CostModel, CostSnapshot, KernelCharge
from repro.gpu.device import DeviceSpec, VirtualDevice, RTX_A6000_SCALED
from repro.gpu.kernel import (
    BlockDim,
    GridDim,
    KernelContext,
    SYNC,
    launch_kernel,
)
from repro.gpu.memory import BufferPool, DeviceBuffer, MemoryBudget
from repro.gpu.stream import Task, TaskGraph, simulate_schedule

__all__ = [
    "CostModel",
    "CostSnapshot",
    "KernelCharge",
    "DeviceSpec",
    "VirtualDevice",
    "RTX_A6000_SCALED",
    "DeviceBuffer",
    "BufferPool",
    "MemoryBudget",
    "KernelContext",
    "GridDim",
    "BlockDim",
    "SYNC",
    "launch_kernel",
    "Task",
    "TaskGraph",
    "simulate_schedule",
]
