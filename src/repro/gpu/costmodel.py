"""Roofline cost model for the virtual GPU.

Kernels charge the work they perform (FLOPs, bytes read/written, atomic
operations, barriers); the model converts a ledger of charges into a modeled
latency.  The conversion uses the classic roofline: a kernel's time is the
maximum of its compute time (flops / peak_flops) and its memory time
(bytes / bandwidth), plus a fixed launch overhead.  Host-device transfers are
charged separately against PCIe bandwidth.

The model is deliberately simple — it is not a cycle-accurate simulator — but
it preserves the property that matters for reproducing SNICIT's evaluation:
stage latency is proportional to the work actually performed, so skipping
empty columns and multiplying sparse residues shows up as reduced modeled
latency exactly as it reduces GPU time in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelCharge", "CostSnapshot", "CostModel"]


@dataclass(frozen=True)
class KernelCharge:
    """Work performed by one kernel launch."""

    name: str
    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    atomics: int = 0
    barriers: int = 0

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable aggregate of a ledger section (for per-stage accounting)."""

    launches: int = 0
    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    atomics: int = 0
    barriers: int = 0
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    modeled_seconds: float = 0.0

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            launches=self.launches - other.launches,
            flops=self.flops - other.flops,
            bytes_read=self.bytes_read - other.bytes_read,
            bytes_written=self.bytes_written - other.bytes_written,
            atomics=self.atomics - other.atomics,
            barriers=self.barriers - other.barriers,
            h2d_bytes=self.h2d_bytes - other.h2d_bytes,
            d2h_bytes=self.d2h_bytes - other.d2h_bytes,
            modeled_seconds=self.modeled_seconds - other.modeled_seconds,
        )

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written


@dataclass
class CostModel:
    """Accumulates kernel charges and converts them to modeled time.

    Parameters
    ----------
    peak_flops:
        Peak arithmetic throughput in FLOP/s.
    mem_bandwidth:
        Device memory bandwidth in bytes/s.
    pcie_bandwidth:
        Host-device transfer bandwidth in bytes/s.
    launch_overhead:
        Fixed per-kernel-launch latency in seconds.
    atomic_cost:
        Extra seconds charged per atomic operation (serialization penalty).
    """

    peak_flops: float = 1.0e12
    mem_bandwidth: float = 2.0e11
    pcie_bandwidth: float = 2.5e10
    launch_overhead: float = 4.0e-6
    atomic_cost: float = 2.0e-9

    _launches: int = field(default=0, init=False)
    _flops: float = field(default=0.0, init=False)
    _bytes_read: float = field(default=0.0, init=False)
    _bytes_written: float = field(default=0.0, init=False)
    _atomics: int = field(default=0, init=False)
    _barriers: int = field(default=0, init=False)
    _h2d: float = field(default=0.0, init=False)
    _d2h: float = field(default=0.0, init=False)
    _modeled_seconds: float = field(default=0.0, init=False)
    _history: list[KernelCharge] = field(default_factory=list, init=False)

    def kernel_time(self, charge: KernelCharge) -> float:
        """Modeled latency of a single kernel launch (roofline + overhead)."""
        compute = charge.flops / self.peak_flops
        memory = charge.bytes_total / self.mem_bandwidth
        return self.launch_overhead + max(compute, memory) + charge.atomics * self.atomic_cost

    def charge_kernel(self, charge: KernelCharge) -> float:
        """Record one launch; returns its modeled latency in seconds."""
        seconds = self.kernel_time(charge)
        self._launches += 1
        self._flops += charge.flops
        self._bytes_read += charge.bytes_read
        self._bytes_written += charge.bytes_written
        self._atomics += charge.atomics
        self._barriers += charge.barriers
        self._modeled_seconds += seconds
        self._history.append(charge)
        return seconds

    def charge_h2d(self, nbytes: float) -> float:
        seconds = nbytes / self.pcie_bandwidth
        self._h2d += nbytes
        self._modeled_seconds += seconds
        return seconds

    def charge_d2h(self, nbytes: float) -> float:
        seconds = nbytes / self.pcie_bandwidth
        self._d2h += nbytes
        self._modeled_seconds += seconds
        return seconds

    def snapshot(self) -> CostSnapshot:
        """Current ledger totals; diff two snapshots for per-stage costs."""
        return CostSnapshot(
            launches=self._launches,
            flops=self._flops,
            bytes_read=self._bytes_read,
            bytes_written=self._bytes_written,
            atomics=self._atomics,
            barriers=self._barriers,
            h2d_bytes=self._h2d,
            d2h_bytes=self._d2h,
            modeled_seconds=self._modeled_seconds,
        )

    def reset(self) -> None:
        self._launches = 0
        self._flops = 0.0
        self._bytes_read = 0.0
        self._bytes_written = 0.0
        self._atomics = 0
        self._barriers = 0
        self._h2d = 0.0
        self._d2h = 0.0
        self._modeled_seconds = 0.0
        self._history.clear()

    @property
    def history(self) -> tuple[KernelCharge, ...]:
        return tuple(self._history)

    @property
    def modeled_seconds(self) -> float:
        return self._modeled_seconds
