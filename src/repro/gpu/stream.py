"""Streams and task graphs for overlap scheduling (SNIG-2020 substrate).

SNIG-2020 reduces CPU-GPU synchronization by expressing inference as a CUDA
task graph: the input batch is partitioned, and each partition's per-layer
kernels form a dependency chain that the scheduler interleaves across
streams.  This module provides the scheduling substrate: a :class:`TaskGraph`
of :class:`Task` nodes with modeled durations, executed either

* eagerly on the host (``TaskGraph.run``) honoring dependencies, and/or
* through :func:`simulate_schedule`, a list scheduler that computes the
  modeled *makespan* over ``n_streams`` concurrent streams — the quantity the
  SNIG baseline reports as its modeled GPU latency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigError

__all__ = ["Task", "TaskGraph", "simulate_schedule"]


@dataclass
class Task:
    """One node of a task graph.

    Parameters
    ----------
    name:
        Unique task identifier.
    fn:
        Host callable performing the work (may be ``None`` for pure modeling).
    duration:
        Modeled duration in seconds; if ``None``, the duration is whatever
        ``fn`` returns (allowing work-dependent modeled costs).
    """

    name: str
    fn: Callable[[], float | None] | None = None
    duration: float | None = None
    deps: list[str] = field(default_factory=list)


class TaskGraph:
    """A DAG of tasks with modeled durations."""

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}

    def add(self, task: Task) -> Task:
        if task.name in self._tasks:
            raise ConfigError(f"duplicate task name {task.name!r}")
        for dep in task.deps:
            if dep not in self._tasks:
                raise ConfigError(f"task {task.name!r} depends on unknown task {dep!r}")
        self._tasks[task.name] = task
        return task

    def task(
        self,
        name: str,
        fn: Callable[[], float | None] | None = None,
        duration: float | None = None,
        deps: list[str] | None = None,
    ) -> Task:
        """Convenience wrapper around :meth:`add`."""
        return self.add(Task(name=name, fn=fn, duration=duration, deps=list(deps or [])))

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def topo_order(self) -> list[Task]:
        """Kahn topological order (insertion-stable)."""
        indeg = {n: len(t.deps) for n, t in self._tasks.items()}
        children: dict[str, list[str]] = {n: [] for n in self._tasks}
        for t in self._tasks.values():
            for dep in t.deps:
                children[dep].append(t.name)
        ready = [n for n, d in indeg.items() if d == 0]
        order: list[Task] = []
        while ready:
            n = ready.pop(0)
            order.append(self._tasks[n])
            for c in children[n]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if len(order) != len(self._tasks):  # pragma: no cover - add() prevents cycles
            raise ConfigError("task graph contains a cycle")
        return order

    def run(self) -> dict[str, float]:
        """Execute every task's host function in dependency order.

        Returns the per-task modeled duration (from ``Task.duration`` or the
        function's return value; 0.0 if neither).
        """
        durations: dict[str, float] = {}
        for t in self.topo_order():
            returned = t.fn() if t.fn is not None else None
            if t.duration is not None:
                durations[t.name] = t.duration
            elif isinstance(returned, (int, float)):
                durations[t.name] = float(returned)
            else:
                durations[t.name] = 0.0
        return durations


def simulate_schedule(
    graph: TaskGraph, durations: dict[str, float], n_streams: int = 4
) -> tuple[float, dict[str, tuple[float, float]]]:
    """List-schedule the graph on ``n_streams`` streams; return (makespan, spans).

    Greedy earliest-ready-first scheduling: a task starts as soon as all its
    dependencies finished and a stream is free.  ``spans`` maps task name to
    its (start, end) interval on the modeled timeline.
    """
    if n_streams < 1:
        raise ConfigError("n_streams must be >= 1")
    order = graph.topo_order()
    finish: dict[str, float] = {}
    spans: dict[str, tuple[float, float]] = {}
    # stream_free is a min-heap of times at which each stream becomes idle
    stream_free = [0.0] * n_streams
    heapq.heapify(stream_free)
    for t in order:
        ready = max((finish[d] for d in t.deps), default=0.0)
        stream_at = heapq.heappop(stream_free)
        start = max(ready, stream_at)
        end = start + durations.get(t.name, 0.0)
        heapq.heappush(stream_free, end)
        finish[t.name] = end
        spans[t.name] = (start, end)
    makespan = max(finish.values(), default=0.0)
    return makespan, spans
