"""The virtual device: memory space + cost model + launch bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.gpu.costmodel import CostModel, CostSnapshot, KernelCharge
from repro.gpu.memory import DeviceBuffer

__all__ = ["DeviceSpec", "VirtualDevice", "RTX_A6000_SCALED"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description used to parameterize the cost model."""

    name: str
    sm_count: int
    peak_flops: float
    mem_bandwidth: float
    memory_bytes: int
    pcie_bandwidth: float = 2.5e10
    launch_overhead: float = 4.0e-6
    max_threads_per_block: int = 1024


#: The paper's GPU (RTX A6000: 84 SMs, ~38.7 TFLOP/s fp32, 768 GB/s, 48 GB),
#: kept at its real ratios.  Workloads in this repo are scaled down, so the
#: absolute modeled times are small; the *ratios* between methods are what the
#: experiments compare.
RTX_A6000_SCALED = DeviceSpec(
    name="rtx-a6000",
    sm_count=84,
    peak_flops=38.7e12,
    mem_bandwidth=768.0e9,
    memory_bytes=48 * 1024**3,
    pcie_bandwidth=25.0e9,
    launch_overhead=4.0e-6,
)


class VirtualDevice:
    """A simulated GPU: bounded memory plus a roofline cost ledger.

    All SNICIT and baseline engines accept a device; kernels charge their work
    here so per-stage modeled latency can be reported next to wall-clock.
    """

    def __init__(self, spec: DeviceSpec = RTX_A6000_SCALED):
        self.spec = spec
        self.cost = CostModel(
            peak_flops=spec.peak_flops,
            mem_bandwidth=spec.mem_bandwidth,
            pcie_bandwidth=spec.pcie_bandwidth,
            launch_overhead=spec.launch_overhead,
        )
        self._allocated = 0
        self._peak_allocated = 0

    # -- memory management -------------------------------------------------
    def alloc(self, shape: tuple[int, ...], dtype=np.float32) -> DeviceBuffer:
        """Allocate an uninitialized device buffer."""
        arr = np.empty(shape, dtype=dtype)
        self._reserve(arr.nbytes)
        return DeviceBuffer(self, arr)

    def zeros(self, shape: tuple[int, ...], dtype=np.float32) -> DeviceBuffer:
        buf = self.alloc(shape, dtype)
        buf.array[...] = 0
        return buf

    def to_device(self, host: np.ndarray) -> DeviceBuffer:
        """Allocate and fill from a host array (charged as H2D)."""
        arr = np.array(host, copy=True)
        self._reserve(arr.nbytes)
        self.cost.charge_h2d(arr.nbytes)
        return DeviceBuffer(self, arr)

    def _reserve(self, nbytes: int) -> None:
        if self._allocated + nbytes > self.spec.memory_bytes:
            raise DeviceError(
                f"device OOM: requested {nbytes} bytes with "
                f"{self.spec.memory_bytes - self._allocated} free on {self.spec.name}"
            )
        self._allocated += nbytes
        self._peak_allocated = max(self._peak_allocated, self._allocated)

    def _release(self, nbytes: int) -> None:
        self._allocated -= nbytes
        if self._allocated < 0:  # pragma: no cover - defensive
            raise DeviceError("double free on virtual device")

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    @property
    def peak_allocated_bytes(self) -> int:
        return self._peak_allocated

    # -- cost ledger --------------------------------------------------------
    def charge(self, charge: KernelCharge) -> float:
        """Record one kernel launch; returns modeled seconds."""
        return self.cost.charge_kernel(charge)

    def snapshot(self) -> CostSnapshot:
        return self.cost.snapshot()

    def reset_cost(self) -> None:
        self.cost.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualDevice({self.spec.name}, allocated={self._allocated})"
