"""Optimizers (the paper uses Adam with lr = 6e-5, §4.2)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.params import Param

__all__ = ["SGD", "Adam"]


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Param], lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ConfigError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: list[Param],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ConfigError("lr must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ConfigError("betas must be in [0, 1)")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * p.grad
            v *= self.beta2
            v += (1 - self.beta2) * (p.grad * p.grad)
            p.value -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
