"""Trainable parameter container."""

from __future__ import annotations

import numpy as np

__all__ = ["Param"]


class Param:
    """A trainable tensor with its gradient accumulator."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad[...] = 0

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Param({self.name!r}, shape={self.value.shape})"
