"""Layers with explicit forward/backward passes.

Shapes are row-major: dense layers take ``(batch, features)``, convolutional
layers take ``(batch, channels, height, width)``.  Each layer caches what its
backward pass needs during forward; calling ``backward`` before ``forward``
is a usage error and raises.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.nn.params import Param

__all__ = [
    "Module",
    "Dense",
    "SparseLinear",
    "BoundedReLU",
    "Flatten",
    "Conv2d",
    "MaxPool2d",
]


class Module:
    """Base layer: forward, backward, parameter enumeration."""

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def params(self) -> list[Param]:
        return []

    def __call__(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        return self.forward(x, train=train)


def _he_init(rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float32)


class Dense(Module):
    """Fully-connected layer ``y = x @ W + b`` with W of shape (in, out)."""

    def __init__(self, n_in: int, n_out: int, rng: np.random.Generator, name: str = "dense"):
        self.weight = Param(_he_init(rng, n_in, (n_in, n_out)), f"{name}.W")
        self.bias = Param(np.zeros(n_out, dtype=np.float32), f"{name}.b")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ShapeError(f"Dense expects (B, {self.weight.shape[0]}), got {x.shape}")
        self._x = x if train else None
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ConfigError("backward() before forward(train=True)")
        self.weight.grad += self._x.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

    def params(self) -> list[Param]:
        return [self.weight, self.bias]


class SparseLinear(Module):
    """Statically-masked linear layer (the SparseLinear toolkit's model).

    A fixed random boolean mask of the requested density is applied to the
    weights at construction and re-applied to every gradient, so masked
    connections never receive weight.  The paper's networks use densities of
    50-60 % (§4.2).
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        density: float,
        rng: np.random.Generator,
        name: str = "sparse",
    ):
        if not 0.0 < density <= 1.0:
            raise ConfigError(f"density must be in (0, 1], got {density}")
        self.mask = (rng.random((n_in, n_out)) < density).astype(np.float32)
        # guarantee every output neuron keeps at least one input
        dead = np.flatnonzero(self.mask.sum(axis=0) == 0)
        if len(dead):
            self.mask[rng.integers(0, n_in, size=len(dead)), dead] = 1.0
        self.weight = Param(_he_init(rng, max(1, int(n_in * density)), (n_in, n_out)) * self.mask,
                            f"{name}.W")
        self.bias = Param(np.zeros(n_out, dtype=np.float32), f"{name}.b")
        self._x: np.ndarray | None = None

    @property
    def density(self) -> float:
        return float(self.mask.mean())

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ShapeError(f"SparseLinear expects (B, {self.weight.shape[0]}), got {x.shape}")
        self._x = x if train else None
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ConfigError("backward() before forward(train=True)")
        self.weight.grad += (self._x.T @ grad) * self.mask
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

    def params(self) -> list[Param]:
        return [self.weight, self.bias]


class BoundedReLU(Module):
    """``min(max(x, 0), ymax)`` — the paper's activation (ymax=1 for §4.2)."""

    def __init__(self, ymax: float = 1.0):
        if ymax <= 0:
            raise ConfigError("ymax must be positive")
        self.ymax = float(ymax)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        out = np.clip(x, 0.0, self.ymax)
        self._mask = ((x > 0) & (x < self.ymax)) if train else None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigError("backward() before forward(train=True)")
        return grad * self._mask


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ConfigError("backward() before forward()")
        return grad.reshape(self._shape)


def _im2col(x: np.ndarray, k: int, pad: int) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold ``(B, C, H, W)`` into ``(B, C*k*k, H_out*W_out)`` (stride 1)."""
    b, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    h_out, w_out = h + 2 * pad - k + 1, w + 2 * pad - k + 1
    # gather k*k shifted views; stride tricks keep this allocation-free
    s = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(b, c, k, k, h_out, w_out),
        strides=(s[0], s[1], s[2], s[3], s[2], s[3]),
        writeable=False,
    )
    cols = view.reshape(b, c * k * k, h_out * w_out)
    return np.ascontiguousarray(cols), (h_out, w_out)


def _col2im(cols: np.ndarray, x_shape: tuple[int, ...], k: int, pad: int) -> np.ndarray:
    """Adjoint of :func:`_im2col` (scatter-add the unfolded gradient)."""
    b, c, h, w = x_shape
    h_p, w_p = h + 2 * pad, w + 2 * pad
    h_out, w_out = h_p - k + 1, w_p - k + 1
    grad = np.zeros((b, c, h_p, w_p), dtype=cols.dtype)
    cols = cols.reshape(b, c, k, k, h_out, w_out)
    for i in range(k):
        for j in range(k):
            grad[:, :, i : i + h_out, j : j + w_out] += cols[:, :, i, j]
    if pad:
        grad = grad[:, :, pad:-pad, pad:-pad]
    return grad


class Conv2d(Module):
    """Stride-1 2-D convolution via im2col (network D's feature extractor)."""

    def __init__(
        self,
        c_in: int,
        c_out: int,
        kernel: int,
        rng: np.random.Generator,
        padding: int = 1,
        name: str = "conv",
    ):
        self.kernel = int(kernel)
        self.padding = int(padding)
        fan_in = c_in * kernel * kernel
        self.weight = Param(_he_init(rng, fan_in, (c_out, fan_in)), f"{name}.W")
        self.bias = Param(np.zeros(c_out, dtype=np.float32), f"{name}.b")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"Conv2d expects (B, C, H, W), got {x.shape}")
        cols, (h_out, w_out) = _im2col(x, self.kernel, self.padding)
        out = np.einsum("of,bfl->bol", self.weight.value, cols) + self.bias.value[None, :, None]
        self._cache = (cols, x.shape, h_out, w_out) if train else None
        return out.reshape(x.shape[0], -1, h_out, w_out)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigError("backward() before forward(train=True)")
        cols, x_shape, h_out, w_out = self._cache
        g = grad.reshape(grad.shape[0], grad.shape[1], -1)
        self.weight.grad += np.einsum("bol,bfl->of", g, cols)
        self.bias.grad += g.sum(axis=(0, 2))
        gcols = np.einsum("of,bol->bfl", self.weight.value, g)
        return _col2im(gcols, x_shape, self.kernel, self.padding)

    def params(self) -> list[Param]:
        return [self.weight, self.bias]


class MaxPool2d(Module):
    """2x2 stride-2 max pooling (requires even spatial dims)."""

    def __init__(self) -> None:
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        b, c, h, w = x.shape
        if h % 2 or w % 2:
            raise ShapeError(f"MaxPool2d needs even H, W; got {x.shape}")
        blocks = x.reshape(b, c, h // 2, 2, w // 2, 2)
        out = blocks.max(axis=(3, 5))
        if train:
            mask = blocks == out[:, :, :, None, :, None]
            # break ties deterministically: keep only the first max per window
            flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(b, c, h // 2, w // 2, 4)
            first = np.cumsum(flat, axis=-1) == 1
            mask = (
                (flat & first)
                .reshape(b, c, h // 2, w // 2, 2, 2)
                .transpose(0, 1, 2, 4, 3, 5)
            )
            self._cache = (mask, x.shape)
        else:
            self._cache = None
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigError("backward() before forward(train=True)")
        mask, x_shape = self._cache
        b, c, h, w = x_shape
        g = grad[:, :, :, None, :, None] * mask
        return g.reshape(x_shape)
