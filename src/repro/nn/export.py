"""Export a trained model's sparse hidden stack to the inference format.

The paper's medium-scale comparison runs SNICIT and the baselines *only on
the l sparsely-connected hidden layers* (§4.2: "we focus on the l sparsely
connected hidden layers ... and compare SNICIT with the baselines on these
sparse layers").  This module splits a trained :class:`~repro.nn.model.
Sequential` into

* ``head``   — everything before the first SparseLinear (dense embedding,
  conv feature extractor); run once to produce ``Y(0)``;
* ``network``— the sparse stack as a :class:`~repro.network.SparseNetwork`
  (weights transposed to the inference ``(out, in)`` convention, per-neuron
  bias vectors, the BoundedReLU's ymax);
* ``tail``   — the classification layers after the sparse stack; maps the
  engine's ``Y(l)`` back to logits, so end-to-end accuracy (and SNICIT's
  accuracy loss) can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigError
from repro.network import LayerSpec, SparseNetwork
from repro.nn.layers import BoundedReLU, Module, SparseLinear
from repro.nn.model import Sequential
from repro.sparse.csr import CSRMatrix

__all__ = ["SparseStack", "export_sparse_stack"]


@dataclass
class SparseStack:
    """A trained model split into head / sparse network / tail."""

    head_layers: list[Module]
    network: SparseNetwork
    tail_layers: list[Module]

    def head(self, images: np.ndarray) -> np.ndarray:
        """Run the head and transpose into the (N, B) column layout."""
        x = images
        for layer in self.head_layers:
            x = layer.forward(x)
        return np.ascontiguousarray(x.T)

    def tail(self, y_last: np.ndarray) -> np.ndarray:
        """Map the sparse stack's output ``(N, B)`` to logits ``(B, K)``."""
        x = np.ascontiguousarray(y_last.T)
        for layer in self.tail_layers:
            x = layer.forward(x)
        return x

    def reference_logits(self, images: np.ndarray) -> np.ndarray:
        """Full exact forward pass (head -> dense sparse-stack -> tail)."""
        y = self.head(images)
        for spec in self.network.layers:
            z = spec.weight.to_dense() @ y + spec.bias_column()
            y = self.network.activation(z)
        return self.tail(y)


def export_sparse_stack(model: Sequential, name: str | None = None) -> SparseStack:
    """Split ``model`` around its contiguous run of SparseLinear layers."""
    sparse_idx = [i for i, l in enumerate(model.layers) if isinstance(l, SparseLinear)]
    if not sparse_idx:
        raise ConfigError("model has no SparseLinear layers to export")
    if sparse_idx != list(range(sparse_idx[0], sparse_idx[-1] + 2, 2)):
        raise ConfigError(
            "SparseLinear layers must alternate with activations "
            "(SparseLinear, BoundedReLU, SparseLinear, ...)"
        )
    first, last = sparse_idx[0], sparse_idx[-1]
    ymax: float | None = None
    specs: list[LayerSpec] = []
    for i in sparse_idx:
        if i + 1 >= len(model.layers) or not isinstance(model.layers[i + 1], BoundedReLU):
            raise ConfigError(f"SparseLinear at index {i} is not followed by BoundedReLU")
        act: BoundedReLU = model.layers[i + 1]
        if ymax is None:
            ymax = act.ymax
        elif act.ymax != ymax:
            raise ConfigError("all sparse-stack activations must share one ymax")
        layer: SparseLinear = model.layers[i]
        w = CSRMatrix.from_dense((layer.weight.value * layer.mask).T)
        specs.append(LayerSpec(weight=w, bias=layer.bias.value.copy(), name=f"S{i}"))
    net = SparseNetwork(
        specs,
        ymax=float(ymax),
        name=name or f"{model.name}-sparse-stack",
        meta={"kind": "medium", "source_model": model.name},
    )
    return SparseStack(
        head_layers=model.layers[:first],
        network=net,
        tail_layers=model.layers[last + 2 :],
    )
