"""Losses (the paper trains with cross-entropy, §4.2)."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

__all__ = ["softmax_cross_entropy", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift for numerical stability."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits.

    ``logits`` is ``(B, K)``, ``labels`` is ``(B,)`` integer classes.
    """
    if logits.ndim != 2 or labels.shape != (logits.shape[0],):
        raise ShapeError(f"bad shapes: logits {logits.shape}, labels {labels.shape}")
    b = logits.shape[0]
    p = softmax(logits)
    eps = np.finfo(p.dtype).tiny
    loss = float(-np.log(p[np.arange(b), labels] + eps).mean())
    grad = p
    grad[np.arange(b), labels] -= 1.0
    return loss, grad / b
