"""Model sparsification: magnitude pruning with optional fine-tuning.

The paper's motivation (§1): sparse DNNs come from pruning and sparse
training (Han et al., RigL, ...).  This module supplies that substrate for
the library's own models: train dense, prune to a target density by weight
magnitude, fine-tune to recover accuracy — producing exactly the kind of
50-60 %-dense SparseLinear stacks the medium-scale experiments accelerate.

``iterative_prune`` implements the classic gradual schedule: density is
reduced over several steps with a short fine-tune after each, which retains
more accuracy than one-shot pruning at the same final density.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.loader import Dataset
from repro.errors import ConfigError
from repro.nn.layers import SparseLinear
from repro.nn.model import Sequential

__all__ = ["magnitude_mask", "prune_model", "iterative_prune", "PruneReport"]


def magnitude_mask(weights: np.ndarray, density: float) -> np.ndarray:
    """Boolean mask keeping the ``density`` fraction of largest-|w| entries.

    Exactly ``round(density * size)`` entries survive (at least one).
    """
    if not 0.0 < density <= 1.0:
        raise ConfigError(f"density must be in (0, 1], got {density}")
    flat = np.abs(weights).ravel()
    keep = max(1, int(round(density * flat.size)))
    if keep >= flat.size:
        return np.ones_like(weights, dtype=np.float32).astype(bool)
    cut = np.partition(flat, flat.size - keep)[flat.size - keep]
    mask = np.abs(weights) >= cut
    # break ties at the cut magnitude deterministically to hit the count
    excess = int(mask.sum()) - keep
    if excess > 0:
        tied = np.flatnonzero((np.abs(weights) == cut).ravel() & mask.ravel())
        mask.ravel()[tied[:excess]] = False
    return mask


def prune_model(model: Sequential, density: float) -> int:
    """One-shot magnitude-prune every SparseLinear layer to ``density``.

    The layer's mask is *tightened* (an already-masked connection never
    comes back — pruning is monotone).  Returns the number of layers
    touched.
    """
    touched = 0
    for layer in model.layers:
        if not isinstance(layer, SparseLinear):
            continue
        new_mask = magnitude_mask(layer.weight.value, density) & (layer.mask > 0)
        # keep every output neuron connected (same guarantee as construction)
        dead = np.flatnonzero(new_mask.sum(axis=0) == 0)
        for j in dead:
            best = int(np.abs(layer.weight.value[:, j]).argmax())
            new_mask[best, j] = True
        layer.mask = new_mask.astype(np.float32)
        layer.weight.value *= layer.mask
        touched += 1
    return touched


@dataclass
class PruneReport:
    """Trace of an iterative pruning run."""

    densities: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_density(self) -> float:
        return self.densities[-1] if self.densities else 1.0


def iterative_prune(
    model: Sequential,
    train: Dataset,
    test: Dataset,
    final_density: float,
    rng: np.random.Generator,
    steps: int = 3,
    epochs_per_step: int = 2,
    lr: float = 1e-3,
) -> PruneReport:
    """Gradual magnitude pruning with fine-tuning between steps.

    Densities follow a geometric schedule from the current density down to
    ``final_density``; each step prunes then fine-tunes for
    ``epochs_per_step`` epochs.
    """
    if steps < 1:
        raise ConfigError("steps must be >= 1")
    sparse_layers = [l for l in model.layers if isinstance(l, SparseLinear)]
    if not sparse_layers:
        raise ConfigError("model has no SparseLinear layers to prune")
    start = float(np.mean([l.density for l in sparse_layers]))
    if final_density >= start:
        raise ConfigError(
            f"final_density {final_density} must be below current {start:.2f}"
        )
    schedule = np.geomspace(start, final_density, steps + 1)[1:]
    report = PruneReport()
    for density in schedule:
        prune_model(model, float(density))
        model.fit(train, epochs=epochs_per_step, rng=rng, lr=lr)
        report.densities.append(float(np.mean([l.density for l in sparse_layers])))
        report.accuracies.append(model.evaluate(test))
    return report
