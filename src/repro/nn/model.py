"""Sequential model container and training loop."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.loader import Dataset
from repro.errors import ConfigError
from repro.nn.layers import Module
from repro.nn.loss import softmax_cross_entropy
from repro.nn.optim import Adam

__all__ = ["Sequential", "accuracy", "TrainReport"]


@dataclass
class TrainReport:
    """Per-epoch loss and accuracy trace from :meth:`Sequential.fit`."""

    losses: list[float]
    train_accuracies: list[float]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    return float((logits.argmax(axis=1) == labels).mean())


class Sequential(Module):
    """An ordered stack of layers trained with softmax cross-entropy."""

    def __init__(self, layers: list[Module], name: str = "model"):
        if not layers:
            raise ConfigError("Sequential needs at least one layer")
        self.layers = list(layers)
        self.name = name

    def forward(self, x: np.ndarray, train: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self):
        out = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    def predict(self, images: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Logits for an image batch, evaluated in chunks."""
        outs = [
            self.forward(images[lo : lo + batch_size])
            for lo in range(0, len(images), batch_size)
        ]
        return np.concatenate(outs, axis=0)

    def evaluate(self, ds: Dataset, batch_size: int = 256) -> float:
        """Top-1 accuracy on a dataset."""
        return accuracy(self.predict(ds.images, batch_size), ds.labels)

    def fit(
        self,
        train: Dataset,
        epochs: int,
        rng: np.random.Generator,
        batch_size: int = 64,
        lr: float = 6e-5,
        optimizer: type | None = None,
        verbose: bool = False,
    ) -> TrainReport:
        """Train with Adam (paper §4.2: Adam, lr 6e-5, cross-entropy).

        The paper trains for 150 epochs at full MNIST scale; the scaled
        experiments here reach their accuracy plateau in far fewer epochs.
        """
        opt = (optimizer or Adam)(self.params(), lr=lr)
        losses: list[float] = []
        accs: list[float] = []
        for epoch in range(epochs):
            epoch_loss = 0.0
            epoch_correct = 0
            shuffled = train.shuffled(rng)
            n_batches = 0
            for batch in shuffled.batches(batch_size):
                logits = self.forward(batch.images, train=True)
                loss, grad = softmax_cross_entropy(logits, batch.labels)
                opt.zero_grad()
                self.backward(grad)
                opt.step()
                epoch_loss += loss
                epoch_correct += int((logits.argmax(axis=1) == batch.labels).sum())
                n_batches += 1
            losses.append(epoch_loss / max(1, n_batches))
            accs.append(epoch_correct / len(train))
            if verbose:  # pragma: no cover - logging only
                from repro.obs import get_logger

                get_logger("nn").info(
                    f"[{self.name}] epoch {epoch}: loss={losses[-1]:.4f} acc={accs[-1]:.3f}"
                )
        return TrainReport(losses, accs)
