"""Minimal trainable neural-network stack (medium-scale DNN substrate).

The paper trains its four medium-scale networks (Table 4) with PyTorch and
the SparseLinear toolkit; neither is available offline, so this package
implements the needed pieces from scratch on NumPy:

* layers with explicit forward/backward (:mod:`repro.nn.layers`):
  ``Dense``, ``SparseLinear`` (static random mask, 50-60 % density like the
  paper's), ``Conv2d`` (im2col), ``MaxPool2d``, ``Flatten``, ``BoundedReLU``
  (the paper's ReLU clamped at 1 for medium DNNs);
* softmax cross-entropy loss (:mod:`repro.nn.loss`);
* Adam and SGD optimizers (:mod:`repro.nn.optim`);
* a ``Sequential`` container with a training loop (:mod:`repro.nn.model`);
* export of a trained model's sparse hidden stack into the inference-side
  :class:`~repro.network.SparseNetwork` format consumed by SNICIT and the
  baselines (:mod:`repro.nn.export`).

Training batches are row-major ``(batch, features)``; the export step
transposes into the paper's column-per-sample layout.
"""

from repro.nn.params import Param
from repro.nn.layers import (
    BoundedReLU,
    Conv2d,
    Dense,
    Flatten,
    MaxPool2d,
    Module,
    SparseLinear,
)
from repro.nn.loss import softmax_cross_entropy
from repro.nn.optim import SGD, Adam
from repro.nn.model import Sequential, accuracy
from repro.nn.export import export_sparse_stack, SparseStack

__all__ = [
    "Param",
    "Module",
    "Dense",
    "SparseLinear",
    "Conv2d",
    "MaxPool2d",
    "Flatten",
    "BoundedReLU",
    "softmax_cross_entropy",
    "Adam",
    "SGD",
    "Sequential",
    "accuracy",
    "export_sparse_stack",
    "SparseStack",
]
