"""The shared "champion" spMM kernel with strategy selection.

XY-2021's contribution is an spMM *optimization space* searched with a cost
model.  For the Radix-Net workloads the space collapses to a simple but
effective choice per layer:

* when the activation block has many all-zero rows (dead neurons across the
  whole batch — the dominant regime deep in SDGC nets), use the
  column-masked kernel :func:`~repro.sparse.spmm.spmm_masked`, whose work
  scales with the *live* rows;
* otherwise use the ELLPACK kernel, the fastest dense-activation strategy
  for fixed fan-in.

SNICIT §3.1/§3.3.1 states it adopts the champions' kernels for both its
pre-convergence and load-reduced spMM stages, so this module is used by the
XY-2021 baseline *and* by SNICIT — the comparison between them then isolates
exactly what the paper isolates: the value of compression at inference time,
not kernel differences.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.gpu.costmodel import KernelCharge
from repro.network import SparseNetwork
from repro.sparse.convert import preferred_spmm_format
from repro.sparse.spmm import spmm_colwise, spmm_ell, spmm_masked, spmm_reduceat

__all__ = [
    "champion_spmm",
    "planned_spmm",
    "baseline_spmm",
    "charge_for",
    "l0_nearest",
    "assign_cached_centroids",
    "assign_charge",
    "StrategyMemo",
    "LIVE_ROW_THRESHOLD",
    "DENSE_WEIGHT_THRESHOLD",
]

#: Above this live-row fraction, masking overhead outweighs the skipped work.
LIVE_ROW_THRESHOLD = 0.6

#: Above this weight density the layer counts as "dense-ish" (medium-scale
#: 50-60 % layers) and the activation-driven column-wise kernel — BF-2019's
#: kernel shape, which the paper adopts for its medium experiments — wins.
DENSE_WEIGHT_THRESHOLD = 0.2


class StrategyMemo:
    """Memoized champion choices per ``(network, layer, live-fraction bucket)``.

    A warm serving session sees the same layers with very similar activation
    liveness call after call, so the champion decision is stable within a
    coarse live-fraction bucket.  The memo records the first decision for
    each bucket and replays it afterwards — the hook SparseDNN-style
    pre-specialized engines use to stop re-deriving per-layer strategy.

    Entries are scoped by the owning network's
    :attr:`~repro.network.SparseNetwork.fingerprint`: a memo that is shared
    across sessions (or persisted and resumed against a different network)
    must never replay network A's champion for network B's same-index layer
    — layer 3 of a 1 %-dense SDGC net and layer 3 of a 55 %-dense medium
    net want opposite strategies.  Legacy callers that pass no network share
    a single ``None`` scope, preserving the old single-network behavior.
    """

    def __init__(self, n_buckets: int = 16):
        if n_buckets < 1:
            from repro.errors import ConfigError

            raise ConfigError(f"n_buckets must be >= 1, got {n_buckets}")
        self.n_buckets = int(n_buckets)
        self._choice: dict[tuple[str | None, int, int], str] = {}
        self.hits = 0
        self.misses = 0
        self._hit_counter = None
        self._miss_counter = None

    @staticmethod
    def _scope(network) -> str | None:
        """Memo scope for a network: its fingerprint (or a raw string key)."""
        if network is None:
            return None
        return getattr(network, "fingerprint", network)

    def bind_metrics(self, registry) -> "StrategyMemo":
        """Mirror hit/miss counts onto a :class:`~repro.obs.MetricsRegistry`.

        The memo binds once (e.g. at :class:`~repro.serve.EngineSession`
        construction); lookups then pay one extra ``inc`` instead of a
        registry lookup per layer.  An ``entries`` gauge is published at
        scrape time.
        """
        self._hit_counter = registry.counter(
            "memo_hits_total", help="strategy memo lookups served from cache"
        )
        self._miss_counter = registry.counter(
            "memo_misses_total", help="strategy memo lookups that re-derived"
        )
        gauge = registry.gauge(
            "memo_entries", help="distinct (network, layer, bucket) choices"
        )
        registry.on_collect(lambda _reg: gauge.set(len(self._choice)))
        return self

    def bucket(self, live_fraction: float) -> int:
        """Quantize a live fraction in [0, 1] to a bucket index."""
        return min(int(live_fraction * self.n_buckets), self.n_buckets - 1)

    def lookup(self, layer: int, live_fraction: float, network=None) -> str | None:
        key = (self._scope(network), layer, self.bucket(live_fraction))
        strategy = self._choice.get(key)
        if strategy is None:
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
        else:
            self.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.inc()
        return strategy

    def record(
        self, layer: int, live_fraction: float, strategy: str, network=None
    ) -> None:
        key = (self._scope(network), layer, self.bucket(live_fraction))
        self._choice[key] = strategy

    def __len__(self) -> int:
        return len(self._choice)

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._choice), "hits": self.hits, "misses": self.misses}


def champion_spmm(
    net: SparseNetwork,
    i: int,
    y: np.ndarray,
    memo: StrategyMemo | None = None,
    out: np.ndarray | None = None,
    metrics=None,
) -> tuple[np.ndarray, int, str]:
    """Compute ``W(i) @ y`` with the best strategy for this block.

    Returns ``(z, work, strategy)``: ``work`` is the kernel's cost-model
    unit count — multiplied weight nonzeros for the batch-parallel kernels
    ('masked'/'ell', each unit costs a length-B FMA row), activation
    nonzeros for the column-wise kernel (each unit costs a length-N_out FMA
    column).

    ``memo`` replays a previously recorded strategy for this layer's
    live-fraction bucket instead of re-deriving it; ``out`` is an optional
    preallocated ``(n_out, B)`` result buffer (must not alias ``y``);
    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) counts each strategy
    decision under ``spmm_strategy_total{strategy=...}``.
    """
    layer = net.layers[i]
    dense_ish = layer.weight.density >= DENSE_WEIGHT_THRESHOLD
    live = None
    if dense_ish:
        # the colwise decision is static per layer (weight density alone),
        # so it memoizes under the full-liveness bucket without paying the
        # live-row scan — the memo is still consulted every call, keeping
        # warm-session hit counters honest on dense-ish networks
        frac = 1.0
    else:
        live = (y != 0).any(axis=1)
        frac = float(live.mean()) if live.size else 0.0
    strategy = memo.lookup(i, frac, network=net) if memo is not None else None
    if strategy is None:
        if dense_ish:
            strategy = "colwise"
        elif frac < LIVE_ROW_THRESHOLD:
            strategy = "masked"
        else:
            # same format rule the baked plan uses, so a cold champion
            # engine and a warm planned session accumulate identically
            # (ELL and CSR row-split sum in different orders, so the
            # format choice — unlike the strategy choice — changes bits)
            strategy = preferred_spmm_format(layer.weight)
        if memo is not None:
            memo.record(i, frac, strategy, network=net)
    if metrics is not None:
        metrics.counter("spmm_strategy_total", strategy=strategy).inc()
    if strategy == "colwise":
        z, nnz = spmm_colwise(net.dense(i), y, out=out)
        return z, nnz, "colwise"
    if strategy == "masked":
        z, active_nnz = spmm_masked(layer.weight, y, live, out=out)
        return z, active_nnz, "masked"
    if strategy == "ell":
        z = spmm_ell(net.ell(i), y, out=out)
        return z, layer.weight.nnz, "ell"
    z = spmm_reduceat(layer.weight, y, out=out)
    return z, layer.weight.nnz, "csr"


def planned_spmm(
    net: SparseNetwork,
    lp,
    y: np.ndarray,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, int, str]:
    """Compute ``W(i) @ y`` via a baked :class:`~repro.core.plan.LayerPlan`.

    The pre-specialized twin of :func:`champion_spmm`: the layer's strategy
    class and sparse format were decided once at warmup, so the per-block
    work is a field read (plus the unavoidable live-row scan for dynamic
    layers, whose masked-vs-batch-parallel choice genuinely depends on the
    activations).  Same return contract and bitwise-identical results —
    every kernel here accumulates in the same per-element order.
    """
    if lp.strategy == "colwise":
        z, nnz = spmm_colwise(net.dense(lp.index), y, out=out)
        return z, nnz, "colwise"
    layer = net.layers[lp.index]
    live = (y != 0).any(axis=1)
    frac = float(live.mean()) if live.size else 0.0
    if frac < lp.live_threshold:
        z, active_nnz = spmm_masked(layer.weight, y, live, out=out)
        return z, active_nnz, "masked"
    if lp.format == "ell":
        z = spmm_ell(net.ell(lp.index), y, out=out)
        return z, layer.weight.nnz, "ell"
    z = spmm_reduceat(layer.weight, y, out=out)
    return z, layer.weight.nnz, "csr"


def baseline_spmm(net: SparseNetwork, i: int, y: np.ndarray) -> tuple[np.ndarray, int, str]:
    """The BF-2019 / SNIG-2020 kernel: plain per-topology strategy.

    ELL for the fixed-fan-in Radix-Net layers, the activation-driven
    column-wise kernel for dense-ish (medium-scale) layers.  No live-row
    masking — that refinement belongs to XY's optimization space.
    """
    layer = net.layers[i]
    if layer.weight.density >= DENSE_WEIGHT_THRESHOLD:
        z, nnz = spmm_colwise(net.dense(i), y)
        return z, nnz, "colwise"
    z = spmm_ell(net.ell(i), y)
    return z, layer.weight.nnz, "ell"


#: Cap (elements) on the (N, chunk, C) inequality block built by l0_nearest;
#: keeps the distance scratch cache-resident while amortizing the Python
#: loop over usefully large column chunks.
_ASSIGN_ELEMENTS = 2_000_000


def l0_nearest(
    y: np.ndarray, cents: np.ndarray, chunk: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest column of ``cents`` for every column of ``y``, by L0 distance.

    The one distance primitive behind both in-block assignment (Algorithm 2,
    Eq. 3) and cross-block cached assignment: exact element inequality
    counts, ties to the lowest centroid index (argmin), chunked over batch
    columns so the ``(N, chunk, C)`` inequality scratch stays cache-sized.
    Chunking never changes the result — each column's distance row is
    computed independently.  Returns ``(idx, dist)`` arrays of length ``B``.
    """
    b = y.shape[1]
    n_cents = cents.shape[1]
    if chunk is None:
        chunk = max(1, _ASSIGN_ELEMENTS // max(1, y.shape[0] * n_cents))
    idx = np.empty(b, dtype=np.int64)
    dist = np.empty(b, dtype=np.int64)
    for lo in range(0, b, chunk):
        hi = min(b, lo + chunk)
        # (N, chunk, C) inequality count -> (chunk, C)
        d = (y[:, lo:hi, None] != cents[:, None, :]).sum(axis=0)
        best = d.argmin(axis=1)
        idx[lo:hi] = best
        dist[lo:hi] = d[np.arange(hi - lo), best]
    return idx, dist


def assign_cached_centroids(
    y: np.ndarray, cents: np.ndarray, chunk: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Batched closest-centroid assignment against *cached* centroids.

    The cross-block twin of Algorithm 2's distance loop: every column of
    ``y`` (``(N, B)``) is matched to its nearest column of ``cents``
    (``(N, C)``, a previous block's centroid activations) by exact L0
    distance (Eq. 3).  Ties resolve to the lowest centroid index, matching
    :func:`repro.core.conversion.assign_centroids`, so a block identical to
    the one that filled the cache reproduces its in-block assignment.

    Returns ``(assign, dist)``: per-column centroid positions into ``cents``
    and the L0 distances (element inequality counts) — the distances feed
    the :class:`~repro.core.reuse.CentroidCache` staleness policy.
    """
    if y.ndim != 2 or cents.ndim != 2:
        raise ShapeError("Y and centroids must be 2-D")
    if y.shape[0] != cents.shape[0]:
        raise ShapeError(
            f"Y has {y.shape[0]} rows but cached centroids have {cents.shape[0]}"
        )
    if cents.shape[1] == 0:
        raise ConfigError("need at least one cached centroid")
    return l0_nearest(y, cents, chunk=chunk)


def assign_charge(n: int, batch: int, n_centroids: int) -> KernelCharge:
    """Cost-model charge for one :func:`assign_cached_centroids` launch."""
    return KernelCharge(
        name="assign_cached_centroids",
        flops=float(n) * batch * n_centroids,
        bytes_read=float(n) * (batch + n_centroids) * 4,
        bytes_written=float(batch) * 16,
    )


def charge_for(strategy: str, work: int, n_out: int, batch: int, name: str) -> KernelCharge:
    """Cost-model charge for one champion/baseline kernel invocation."""
    if strategy == "colwise":
        return KernelCharge(
            name=name,
            flops=2.0 * work * n_out,
            bytes_read=float(work) * (n_out * 4 + 8),
            bytes_written=float(n_out) * batch * 4,
        )
    return KernelCharge(
        name=name,
        flops=2.0 * work * batch,
        bytes_read=float(work) * (batch * 4 + 12),
        bytes_written=float(n_out) * batch * 4,
    )
