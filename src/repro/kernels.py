"""The shared "champion" spMM kernel with strategy selection.

XY-2021's contribution is an spMM *optimization space* searched with a cost
model.  For the Radix-Net workloads the space collapses to a simple but
effective choice per layer:

* when the activation block has many all-zero rows (dead neurons across the
  whole batch — the dominant regime deep in SDGC nets), use the
  column-masked kernel :func:`~repro.sparse.spmm.spmm_masked`, whose work
  scales with the *live* rows;
* otherwise use the ELLPACK kernel, the fastest dense-activation strategy
  for fixed fan-in.

SNICIT §3.1/§3.3.1 states it adopts the champions' kernels for both its
pre-convergence and load-reduced spMM stages, so this module is used by the
XY-2021 baseline *and* by SNICIT — the comparison between them then isolates
exactly what the paper isolates: the value of compression at inference time,
not kernel differences.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.gpu.costmodel import KernelCharge
from repro.network import SparseNetwork
from repro.sparse.convert import preferred_spmm_format
from repro.sparse.spmm import spmm_colwise, spmm_ell, spmm_masked, spmm_reduceat

__all__ = [
    "champion_spmm",
    "planned_spmm",
    "baseline_spmm",
    "charge_for",
    "l0_nearest",
    "assign_cached_centroids",
    "assign_charge",
    "StrategyMemo",
    "LIVE_ROW_THRESHOLD",
    "DENSE_WEIGHT_THRESHOLD",
]

#: Above this live-row fraction, masking overhead outweighs the skipped work.
LIVE_ROW_THRESHOLD = 0.6

#: Above this weight density the layer counts as "dense-ish" (medium-scale
#: 50-60 % layers) and the activation-driven column-wise kernel — BF-2019's
#: kernel shape, which the paper adopts for its medium experiments — wins.
DENSE_WEIGHT_THRESHOLD = 0.2


class StrategyMemo:
    """Memoized champion choices per ``(network, layer, live-fraction bucket)``.

    A warm serving session sees the same layers with very similar activation
    liveness call after call, so the champion decision is stable within a
    coarse live-fraction bucket.  The memo records the first decision for
    each bucket and replays it afterwards — the hook SparseDNN-style
    pre-specialized engines use to stop re-deriving per-layer strategy.

    Entries are scoped by the owning network's
    :attr:`~repro.network.SparseNetwork.fingerprint`: a memo that is shared
    across sessions (or persisted and resumed against a different network)
    must never replay network A's champion for network B's same-index layer
    — layer 3 of a 1 %-dense SDGC net and layer 3 of a 55 %-dense medium
    net want opposite strategies.  Legacy callers that pass no network share
    a single ``None`` scope, preserving the old single-network behavior.

    With ``revise_ratio`` set the memo goes beyond replay-first-decision to
    *measure-and-revise* (XY-2021's ``explore='measure'`` idiom): every
    dispatch reports its wall time via :meth:`observe`, which keeps an EWMA
    per bucket against a baseline frozen after ``min_samples`` observations.
    When the EWMA drifts past ``baseline * revise_ratio`` the recorded
    choice is dropped, forcing the next call through the champion tournament
    again, and the cost record resets so the new champion earns a fresh
    baseline.  Revision only ever discards a *decision* — every candidate
    kernel accumulates in the same per-element order (the format half of the
    decision is static per layer), so outputs are bitwise unaffected; only
    the ``strategy_revised_total`` counter moves.  Cost records persist
    through :meth:`export_state`/:meth:`import_state` so a restored session
    resumes with the baselines it measured, not a blank slate.
    """

    def __init__(
        self,
        n_buckets: int = 16,
        revise_ratio: float | None = None,
        min_samples: int = 3,
        ewma_alpha: float = 0.25,
    ):
        if n_buckets < 1:
            raise ConfigError(f"n_buckets must be >= 1, got {n_buckets}")
        if revise_ratio is not None and revise_ratio <= 1.0:
            # a ratio at or below 1 would revise on any jitter and could
            # thrash forever; > 1 guarantees convergence under stable costs
            raise ConfigError(f"revise_ratio must be > 1, got {revise_ratio}")
        if min_samples < 1:
            raise ConfigError(f"min_samples must be >= 1, got {min_samples}")
        self.n_buckets = int(n_buckets)
        self.revise_ratio = None if revise_ratio is None else float(revise_ratio)
        self.min_samples = int(min_samples)
        self.ewma_alpha = float(ewma_alpha)
        self._choice: dict[tuple[str | None, int, int], str] = {}
        #: per-key ``[count, ewma_seconds, baseline_seconds]`` cost records
        self._cost: dict[tuple[str | None, int, int], list[float]] = {}
        self.hits = 0
        self.misses = 0
        self.revisions = 0
        self._hit_counter = None
        self._miss_counter = None
        self._revise_counter = None

    @staticmethod
    def _scope(network) -> str | None:
        """Memo scope for a network: its fingerprint (or a raw string key)."""
        if network is None:
            return None
        return getattr(network, "fingerprint", network)

    def bind_metrics(self, registry) -> "StrategyMemo":
        """Mirror hit/miss counts onto a :class:`~repro.obs.MetricsRegistry`.

        The memo binds once (e.g. at :class:`~repro.serve.EngineSession`
        construction); lookups then pay one extra ``inc`` instead of a
        registry lookup per layer.  An ``entries`` gauge is published at
        scrape time.
        """
        self._hit_counter = registry.counter(
            "memo_hits_total", help="strategy memo lookups served from cache"
        )
        self._miss_counter = registry.counter(
            "memo_misses_total", help="strategy memo lookups that re-derived"
        )
        self._revise_counter = registry.counter(
            "strategy_revised_total",
            help="memoized strategy choices dropped after cost drift",
        )
        gauge = registry.gauge(
            "memo_entries", help="distinct (network, layer, bucket) choices"
        )
        registry.on_collect(lambda _reg: gauge.set(len(self._choice)))
        return self

    def bucket(self, live_fraction: float) -> int:
        """Quantize a live fraction in [0, 1] to a bucket index."""
        return min(int(live_fraction * self.n_buckets), self.n_buckets - 1)

    def lookup(self, layer: int, live_fraction: float, network=None) -> str | None:
        key = (self._scope(network), layer, self.bucket(live_fraction))
        strategy = self._choice.get(key)
        if strategy is None:
            self.misses += 1
            if self._miss_counter is not None:
                self._miss_counter.inc()
        else:
            self.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.inc()
        return strategy

    def record(
        self, layer: int, live_fraction: float, strategy: str, network=None
    ) -> None:
        key = (self._scope(network), layer, self.bucket(live_fraction))
        self._choice[key] = strategy

    def observe(
        self,
        layer: int,
        live_fraction: float,
        strategy: str,
        seconds: float,
        network=None,
    ) -> bool:
        """Feed one measured dispatch cost; returns True if it revised.

        The EWMA for the bucket updates on every observation; once
        ``min_samples`` have accumulated the current EWMA freezes as the
        bucket's baseline.  With :attr:`revise_ratio` enabled, an EWMA that
        drifts past ``baseline * revise_ratio`` drops the memoized choice
        (the next lookup misses and re-runs the champion tournament) and
        resets the record — so after any drift event, stable costs settle a
        new baseline and revisions stop.  ``strategy`` is accepted for
        symmetry with :meth:`record` and future per-strategy records; the
        cost key is the same ``(scope, layer, bucket)`` as the choice key.
        """
        del strategy  # cost records are keyed per bucket, not per strategy
        key = (self._scope(network), layer, self.bucket(live_fraction))
        rec = self._cost.get(key)
        if rec is None:
            rec = self._cost[key] = [0.0, 0.0, 0.0]
        count = int(rec[0]) + 1
        ewma = (
            float(seconds)
            if count == 1
            else (1.0 - self.ewma_alpha) * rec[1] + self.ewma_alpha * float(seconds)
        )
        baseline = ewma if count == self.min_samples else rec[2]
        rec[0], rec[1], rec[2] = float(count), ewma, baseline
        if (
            self.revise_ratio is not None
            and count > self.min_samples
            and baseline > 0.0
            and ewma > baseline * self.revise_ratio
        ):
            self._choice.pop(key, None)
            rec[0] = rec[1] = rec[2] = 0.0
            self.revisions += 1
            if self._revise_counter is not None:
                self._revise_counter.inc()
            return True
        return False

    # ------------------------------------------------------------ persistence
    def export_state(self) -> dict:
        """JSON-safe snapshot of choices and cost baselines (for warmstore)."""
        return {
            "n_buckets": self.n_buckets,
            "choices": [
                [scope, layer, bucket, strategy]
                for (scope, layer, bucket), strategy in sorted(
                    self._choice.items(), key=lambda kv: (kv[0][0] or "", kv[0][1:])
                )
            ],
            "costs": [
                [scope, layer, bucket, rec[0], rec[1], rec[2]]
                for (scope, layer, bucket), rec in sorted(
                    self._cost.items(), key=lambda kv: (kv[0][0] or "", kv[0][1:])
                )
            ],
        }

    def import_state(self, state: dict) -> None:
        """Restore an :meth:`export_state` snapshot into this memo.

        Bucket indices are only meaningful at the quantization they were
        recorded under, so a bucket-count mismatch is a configuration error,
        not something to silently rebucket.
        """
        n_buckets = int(state.get("n_buckets", self.n_buckets))
        if n_buckets != self.n_buckets:
            raise ConfigError(
                f"memo state has {n_buckets} buckets but this session uses "
                f"{self.n_buckets}"
            )
        for scope, layer, bucket, strategy in state.get("choices", []):
            self._choice[(scope, int(layer), int(bucket))] = str(strategy)
        for scope, layer, bucket, count, ewma, baseline in state.get("costs", []):
            self._cost[(scope, int(layer), int(bucket))] = [
                float(count),
                float(ewma),
                float(baseline),
            ]

    def __len__(self) -> int:
        return len(self._choice)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._choice),
            "hits": self.hits,
            "misses": self.misses,
            "revisions": self.revisions,
            "cost_entries": len(self._cost),
        }


def champion_spmm(
    net: SparseNetwork,
    i: int,
    y: np.ndarray,
    memo: StrategyMemo | None = None,
    out: np.ndarray | None = None,
    metrics=None,
) -> tuple[np.ndarray, int, str]:
    """Compute ``W(i) @ y`` with the best strategy for this block.

    Returns ``(z, work, strategy)``: ``work`` is the kernel's cost-model
    unit count — multiplied weight nonzeros for the batch-parallel kernels
    ('masked'/'ell', each unit costs a length-B FMA row), activation
    nonzeros for the column-wise kernel (each unit costs a length-N_out FMA
    column).

    ``memo`` replays a previously recorded strategy for this layer's
    live-fraction bucket instead of re-deriving it; ``out`` is an optional
    preallocated ``(n_out, B)`` result buffer (must not alias ``y``);
    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) counts each strategy
    decision under ``spmm_strategy_total{strategy=...}``.
    """
    layer = net.layers[i]
    dense_ish = layer.weight.density >= DENSE_WEIGHT_THRESHOLD
    live = None
    if dense_ish:
        # the colwise decision is static per layer (weight density alone),
        # so it memoizes under the full-liveness bucket without paying the
        # live-row scan — the memo is still consulted every call, keeping
        # warm-session hit counters honest on dense-ish networks
        frac = 1.0
    else:
        live = (y != 0).any(axis=1)
        frac = float(live.mean()) if live.size else 0.0
    strategy = memo.lookup(i, frac, network=net) if memo is not None else None
    if strategy is None:
        if dense_ish:
            strategy = "colwise"
        elif frac < LIVE_ROW_THRESHOLD:
            strategy = "masked"
        else:
            # same format rule the baked plan uses, so a cold champion
            # engine and a warm planned session accumulate identically
            # (ELL and CSR row-split sum in different orders, so the
            # format choice — unlike the strategy choice — changes bits)
            strategy = preferred_spmm_format(layer.weight)
        if memo is not None:
            memo.record(i, frac, strategy, network=net)
    if metrics is not None:
        metrics.counter("spmm_strategy_total", strategy=strategy).inc()
    t0 = time.perf_counter() if memo is not None else 0.0
    if strategy == "colwise":
        z, work = spmm_colwise(net.dense(i), y, out=out)
    elif strategy == "masked":
        if live is None:  # memo replayed 'masked' from a dense-ish bucket
            live = (y != 0).any(axis=1)
        z, work = spmm_masked(layer.weight, y, live, out=out)
    elif strategy == "ell":
        z = spmm_ell(net.ell(i), y, out=out)
        work = layer.weight.nnz
    else:
        z = spmm_reduceat(layer.weight, y, out=out)
        work = layer.weight.nnz
    if memo is not None:
        # feed the measure-and-revise loop; with revise_ratio unset this
        # only accumulates the cost baselines the warmstore persists
        memo.observe(i, frac, strategy, time.perf_counter() - t0, network=net)
    return z, work, strategy


def planned_spmm(
    net: SparseNetwork,
    lp,
    y: np.ndarray,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, int, str, float]:
    """Compute ``W(i) @ y`` via a baked :class:`~repro.core.plan.LayerPlan`.

    The pre-specialized twin of :func:`champion_spmm`: the layer's strategy
    class and sparse format were decided once at warmup, so the per-block
    work is a field read (plus the unavoidable live-row scan for dynamic
    layers, whose masked-vs-batch-parallel choice genuinely depends on the
    activations).  Bitwise-identical results — every kernel here accumulates
    in the same per-element order.  Returns ``(z, work, strategy, frac)``;
    the extra live-fraction element (vs :func:`champion_spmm`'s 3-tuple)
    lets :meth:`~repro.core.plan.StrategyPlan.dispatch` feed the
    measure-and-revise memo without paying a second live-row scan.
    """
    if lp.strategy == "colwise":
        z, nnz = spmm_colwise(net.dense(lp.index), y, out=out)
        return z, nnz, "colwise", 1.0
    layer = net.layers[lp.index]
    live = (y != 0).any(axis=1)
    frac = float(live.mean()) if live.size else 0.0
    if frac < lp.live_threshold:
        z, active_nnz = spmm_masked(layer.weight, y, live, out=out)
        return z, active_nnz, "masked", frac
    if lp.format == "ell":
        z = spmm_ell(net.ell(lp.index), y, out=out)
        return z, layer.weight.nnz, "ell", frac
    z = spmm_reduceat(layer.weight, y, out=out)
    return z, layer.weight.nnz, "csr", frac


def baseline_spmm(net: SparseNetwork, i: int, y: np.ndarray) -> tuple[np.ndarray, int, str]:
    """The BF-2019 / SNIG-2020 kernel: plain per-topology strategy.

    ELL for the fixed-fan-in Radix-Net layers, the activation-driven
    column-wise kernel for dense-ish (medium-scale) layers.  No live-row
    masking — that refinement belongs to XY's optimization space.
    """
    layer = net.layers[i]
    if layer.weight.density >= DENSE_WEIGHT_THRESHOLD:
        z, nnz = spmm_colwise(net.dense(i), y)
        return z, nnz, "colwise"
    z = spmm_ell(net.ell(i), y)
    return z, layer.weight.nnz, "ell"


#: Cap (elements) on the (N, chunk, C) inequality block built by l0_nearest;
#: keeps the distance scratch cache-resident while amortizing the Python
#: loop over usefully large column chunks.
_ASSIGN_ELEMENTS = 2_000_000


def l0_nearest(
    y: np.ndarray, cents: np.ndarray, chunk: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest column of ``cents`` for every column of ``y``, by L0 distance.

    The one distance primitive behind both in-block assignment (Algorithm 2,
    Eq. 3) and cross-block cached assignment: exact element inequality
    counts, ties to the lowest centroid index (argmin), chunked over batch
    columns so the ``(N, chunk, C)`` inequality scratch stays cache-sized.
    Chunking never changes the result — each column's distance row is
    computed independently.  Returns ``(idx, dist)`` arrays of length ``B``.
    """
    b = y.shape[1]
    n_cents = cents.shape[1]
    if chunk is None:
        chunk = max(1, _ASSIGN_ELEMENTS // max(1, y.shape[0] * n_cents))
    idx = np.empty(b, dtype=np.int64)
    dist = np.empty(b, dtype=np.int64)
    for lo in range(0, b, chunk):
        hi = min(b, lo + chunk)
        # (N, chunk, C) inequality count -> (chunk, C)
        d = (y[:, lo:hi, None] != cents[:, None, :]).sum(axis=0)
        best = d.argmin(axis=1)
        idx[lo:hi] = best
        dist[lo:hi] = d[np.arange(hi - lo), best]
    return idx, dist


def assign_cached_centroids(
    y: np.ndarray, cents: np.ndarray, chunk: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Batched closest-centroid assignment against *cached* centroids.

    The cross-block twin of Algorithm 2's distance loop: every column of
    ``y`` (``(N, B)``) is matched to its nearest column of ``cents``
    (``(N, C)``, a previous block's centroid activations) by exact L0
    distance (Eq. 3).  Ties resolve to the lowest centroid index, matching
    :func:`repro.core.conversion.assign_centroids`, so a block identical to
    the one that filled the cache reproduces its in-block assignment.

    Returns ``(assign, dist)``: per-column centroid positions into ``cents``
    and the L0 distances (element inequality counts) — the distances feed
    the :class:`~repro.core.reuse.CentroidCache` staleness policy.
    """
    if y.ndim != 2 or cents.ndim != 2:
        raise ShapeError("Y and centroids must be 2-D")
    if y.shape[0] != cents.shape[0]:
        raise ShapeError(
            f"Y has {y.shape[0]} rows but cached centroids have {cents.shape[0]}"
        )
    if cents.shape[1] == 0:
        raise ConfigError("need at least one cached centroid")
    return l0_nearest(y, cents, chunk=chunk)


def assign_charge(n: int, batch: int, n_centroids: int) -> KernelCharge:
    """Cost-model charge for one :func:`assign_cached_centroids` launch."""
    return KernelCharge(
        name="assign_cached_centroids",
        flops=float(n) * batch * n_centroids,
        bytes_read=float(n) * (batch + n_centroids) * 4,
        bytes_written=float(batch) * 16,
    )


def charge_for(strategy: str, work: int, n_out: int, batch: int, name: str) -> KernelCharge:
    """Cost-model charge for one champion/baseline kernel invocation."""
    if strategy == "colwise":
        return KernelCharge(
            name=name,
            flops=2.0 * work * n_out,
            bytes_read=float(work) * (n_out * 4 + 8),
            bytes_written=float(n_out) * batch * 4,
        )
    return KernelCharge(
        name=name,
        flops=2.0 * work * batch,
        bytes_read=float(work) * (batch * 4 + 12),
        bytes_written=float(n_out) * batch * 4,
    )
