"""The shared "champion" spMM kernel with strategy selection.

XY-2021's contribution is an spMM *optimization space* searched with a cost
model.  For the Radix-Net workloads the space collapses to a simple but
effective choice per layer:

* when the activation block has many all-zero rows (dead neurons across the
  whole batch — the dominant regime deep in SDGC nets), use the
  column-masked kernel :func:`~repro.sparse.spmm.spmm_masked`, whose work
  scales with the *live* rows;
* otherwise use the ELLPACK kernel, the fastest dense-activation strategy
  for fixed fan-in.

SNICIT §3.1/§3.3.1 states it adopts the champions' kernels for both its
pre-convergence and load-reduced spMM stages, so this module is used by the
XY-2021 baseline *and* by SNICIT — the comparison between them then isolates
exactly what the paper isolates: the value of compression at inference time,
not kernel differences.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.costmodel import KernelCharge
from repro.network import SparseNetwork
from repro.sparse.spmm import spmm_colwise, spmm_ell, spmm_masked

__all__ = [
    "champion_spmm",
    "baseline_spmm",
    "charge_for",
    "LIVE_ROW_THRESHOLD",
    "DENSE_WEIGHT_THRESHOLD",
]

#: Above this live-row fraction, masking overhead outweighs the skipped work.
LIVE_ROW_THRESHOLD = 0.6

#: Above this weight density the layer counts as "dense-ish" (medium-scale
#: 50-60 % layers) and the activation-driven column-wise kernel — BF-2019's
#: kernel shape, which the paper adopts for its medium experiments — wins.
DENSE_WEIGHT_THRESHOLD = 0.2


def champion_spmm(
    net: SparseNetwork, i: int, y: np.ndarray
) -> tuple[np.ndarray, int, str]:
    """Compute ``W(i) @ y`` with the best strategy for this block.

    Returns ``(z, work, strategy)``: ``work`` is the kernel's cost-model
    unit count — multiplied weight nonzeros for the batch-parallel kernels
    ('masked'/'ell', each unit costs a length-B FMA row), activation
    nonzeros for the column-wise kernel (each unit costs a length-N_out FMA
    column).
    """
    layer = net.layers[i]
    if layer.weight.density >= DENSE_WEIGHT_THRESHOLD:
        z, nnz = spmm_colwise(net.dense(i), y)
        return z, nnz, "colwise"
    live = (y != 0).any(axis=1)
    frac = float(live.mean()) if live.size else 0.0
    if frac < LIVE_ROW_THRESHOLD:
        z, active_nnz = spmm_masked(layer.weight, y, live)
        return z, active_nnz, "masked"
    z = spmm_ell(net.ell(i), y)
    return z, layer.weight.nnz, "ell"


def baseline_spmm(net: SparseNetwork, i: int, y: np.ndarray) -> tuple[np.ndarray, int, str]:
    """The BF-2019 / SNIG-2020 kernel: plain per-topology strategy.

    ELL for the fixed-fan-in Radix-Net layers, the activation-driven
    column-wise kernel for dense-ish (medium-scale) layers.  No live-row
    masking — that refinement belongs to XY's optimization space.
    """
    layer = net.layers[i]
    if layer.weight.density >= DENSE_WEIGHT_THRESHOLD:
        z, nnz = spmm_colwise(net.dense(i), y)
        return z, nnz, "colwise"
    z = spmm_ell(net.ell(i), y)
    return z, layer.weight.nnz, "ell"


def charge_for(strategy: str, work: int, n_out: int, batch: int, name: str) -> KernelCharge:
    """Cost-model charge for one champion/baseline kernel invocation."""
    if strategy == "colwise":
        return KernelCharge(
            name=name,
            flops=2.0 * work * n_out,
            bytes_read=float(work) * (n_out * 4 + 8),
            bytes_written=float(n_out) * batch * 4,
        )
    return KernelCharge(
        name=name,
        flops=2.0 * work * batch,
        bytes_read=float(work) * (batch * 4 + 12),
        bytes_written=float(n_out) * batch * 4,
    )
