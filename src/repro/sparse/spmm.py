"""Sparse-times-dense matrix multiplication kernels.

Every engine in this repo ultimately computes ``W @ Y`` where ``W`` is a
sparse ``(N_out, N_in)`` weight matrix and ``Y`` is a dense ``(N_in, B)``
activation block.  Four strategies are provided, mirroring the kernel design
space that XY-2021 searches:

``spmm_reduceat``
    Row-split CSR: expand each nonzero's contribution row of ``Y`` and
    segment-sum per output row.  General-purpose workhorse.
``spmm_ell``
    ELLPACK: ``width`` fully-vectorized gather+FMA passes; fastest for the
    fixed-fan-in Radix-Net weights.
``spmm_scatter``
    Nonzero-parallel scatter with ``np.add.at`` (atomic-add analogue); poor
    on CPU exactly as atomics-heavy kernels are poor on GPU — it exists so
    the XY cost model has a genuinely losing strategy to reject.
``spmm_masked``
    Column-masked CSR: drop every W-nonzero whose input neuron is inactive
    before multiplying.  This is simultaneously BF-2019's active-row
    compaction and SNICIT's load-reduced spMM (§3.3.1): work scales with the
    *active* input rows, not with N.

All kernels accumulate in the dtype of ``Y`` and sum each output element in
ascending column-index order, so different strategies produce bitwise
identical results for the same operands (tested).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.gpu.costmodel import KernelCharge
from repro.sparse.csr import CSRMatrix, _segment_sum
from repro.sparse.ell import ELLMatrix

__all__ = [
    "spmm",
    "spmm_reduceat",
    "spmm_ell",
    "spmm_scatter",
    "spmm_masked",
    "spmm_colwise",
    "spmm_tiled",
    "spmm_charge",
]

#: Cap (elements) on the nnz-by-B scratch block built by the chunked kernels.
#: Sized so the contrib block stays L2-resident (512 KiB at float32): letting
#: it grow to DRAM scale makes ``np.add.reduceat`` memory-bound and costs
#: 2-4x wall time at batch >= 64 for the same element work.  Chunk boundaries
#: always align with whole rows/columns, so the budget never changes the
#: per-element accumulation order — results stay bitwise identical.
_SCRATCH_ELEMENTS = 131_072


def _check_operands(w_shape: tuple[int, int], y: np.ndarray) -> None:
    if y.ndim != 2:
        raise ShapeError(f"Y must be 2-D, got {y.ndim}-D")
    if w_shape[1] != y.shape[0]:
        raise ShapeError(f"W {w_shape} incompatible with Y {y.shape}")


def spmm_reduceat(w: CSRMatrix, y: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Row-split CSR spMM: ``out = W @ Y``.

    Processes rows in chunks so the ``(chunk_nnz, B)`` scratch block stays
    within a fixed memory budget (cache friendliness, per the HPC guides).
    """
    _check_operands(w.shape, y)
    n_out = w.shape[0]
    b = y.shape[1]
    if out is None:
        out = np.zeros((n_out, b), dtype=y.dtype)
    else:
        out[...] = 0
    if w.nnz == 0 or b == 0:
        return out
    # Chunk boundaries walk indptr so the (chunk_nnz, B) scratch block is
    # bounded by the *actual* nonzero span, not the mean nnz/row — a skewed
    # row distribution must not blow past the budget.  A single row wider
    # than the budget is processed alone (its scratch is irreducible).
    nnz_budget = max(1, _SCRATCH_ELEMENTS // max(1, b))
    r0 = 0
    while r0 < n_out:
        r1 = int(np.searchsorted(w.indptr, w.indptr[r0] + nnz_budget, side="right")) - 1
        r1 = min(n_out, max(r1, r0 + 1))
        lo, hi = w.indptr[r0], w.indptr[r1]
        if lo == hi:
            r0 = r1
            continue
        contrib = w.data[lo:hi, None] * y[w.indices[lo:hi], :]
        local_indptr = w.indptr[r0 : r1 + 1] - lo
        out[r0:r1] = _segment_sum(contrib, local_indptr, r1 - r0)
        r0 = r1
    return out


def spmm_ell(w: ELLMatrix, y: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """ELLPACK spMM: ``width`` gather+FMA passes over the full batch."""
    _check_operands(w.shape, y)
    n_out = w.shape[0]
    if out is None:
        out = np.zeros((n_out, y.shape[1]), dtype=y.dtype)
    else:
        out[...] = 0
    for k in range(w.width):
        out += w.val[:, k, None] * y[w.idx[:, k], :]
    return out


def spmm_scatter(w: CSRMatrix, y: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Nonzero-parallel scatter spMM (atomic-add analogue; deliberately slow)."""
    _check_operands(w.shape, y)
    if out is None:
        out = np.zeros((w.shape[0], y.shape[1]), dtype=y.dtype)
    else:
        out[...] = 0
    if w.nnz == 0:
        return out
    rows = np.repeat(np.arange(w.shape[0], dtype=np.int64), w.row_nnz)
    contrib = w.data[:, None] * y[w.indices, :]
    np.add.at(out, rows, contrib)
    return out


def spmm_masked(
    w: CSRMatrix,
    y: np.ndarray,
    col_mask: np.ndarray,
    out: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Column-masked spMM: only W-nonzeros whose input row is active contribute.

    ``col_mask`` is a boolean vector over input neurons (rows of ``Y``).
    Returns ``(out, active_nnz)`` where ``active_nnz`` is the number of
    W-nonzeros actually multiplied — the work metric charged to the cost
    model by load-reduced engines.
    """
    _check_operands(w.shape, y)
    col_mask = np.asarray(col_mask, dtype=bool)
    if col_mask.shape != (w.shape[1],):
        raise ShapeError("col_mask must have one entry per W column")
    n_out = w.shape[0]
    if out is None:
        out = np.empty((n_out, y.shape[1]), dtype=y.dtype)
    sel = col_mask[w.indices]
    active_nnz = int(sel.sum())
    if active_nnz == 0:
        out[...] = 0
        return out, 0
    # per-row surviving counts -> new segment boundaries
    counts = _segment_sum(sel.astype(np.int64), w.indptr, n_out)
    indptr = np.zeros(n_out + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    contrib = w.data[sel, None] * y[w.indices[sel], :]
    out[...] = _segment_sum(contrib, indptr, n_out)
    return out, active_nnz


def spmm_colwise(
    w_dense: np.ndarray, y: np.ndarray, out: np.ndarray | None = None
) -> tuple[np.ndarray, int]:
    """Activation-driven spMM: work scales with ``nnz(Y)``, not with N x B.

    This is BF-2019's kernel shape for dense-ish weights (the paper adopts
    BF's kernels for its medium-scale experiments, §4.2.1): each nonzero
    activation entry ``Y[i, j]`` scatters ``W[:, i] * Y[i, j]`` into output
    column ``j``.  Column-major pair ordering keeps per-column contributions
    contiguous so a segment sum finishes each column.

    Returns ``(out, nnz)`` where ``nnz`` is the number of activation
    nonzeros processed (the cost-model work unit: each costs one W-column
    FMA pass).
    """
    w_dense = np.asarray(w_dense)
    if w_dense.ndim != 2:
        raise ShapeError("W must be a dense 2-D array")
    _check_operands(w_dense.shape, y)
    n_out = w_dense.shape[0]
    b = y.shape[1]
    if out is None:
        out = np.empty((n_out, b), dtype=y.dtype)
    cols, rows = np.nonzero(y.T)  # sorted by column, then row
    nnz = len(cols)
    if nnz == 0:
        out[...] = 0
        return out, 0
    vals = y[rows, cols]
    counts = np.bincount(cols, minlength=b)
    indptr = np.zeros(b + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    w_t = w_dense.T  # (N_in, N_out); row gather keeps memory access contiguous
    pairs_per_chunk = max(1, _SCRATCH_ELEMENTS // max(1, n_out))
    acc = np.empty((b, n_out), dtype=y.dtype)
    # chunk along whole columns so each segment stays within one chunk
    col_lo = 0
    while col_lo < b:
        col_hi = col_lo + 1
        while col_hi < b and indptr[col_hi + 1] - indptr[col_lo] <= pairs_per_chunk:
            col_hi += 1
        lo, hi = indptr[col_lo], indptr[col_hi]
        contrib = w_t[rows[lo:hi]] * vals[lo:hi, None]
        local_indptr = indptr[col_lo : col_hi + 1] - lo
        acc[col_lo:col_hi] = _segment_sum(contrib, local_indptr, col_hi - col_lo)
        col_lo = col_hi
    out[...] = acc.T
    return out, nnz


def spmm_tiled(
    w: CSRMatrix, y: np.ndarray, tile_cols: int = 256, out: np.ndarray | None = None
) -> np.ndarray:
    """Column-tiled spMM: process the batch in ``tile_cols``-wide slabs.

    The tiling point of the optimization space (Guo et al. / Sputnik-style):
    bounding the active slab of ``Y`` keeps it cache-resident while the
    weight nonzeros stream.  Results are identical to
    :func:`spmm_reduceat` (same per-element accumulation order).
    """
    _check_operands(w.shape, y)
    if tile_cols < 1:
        raise ShapeError("tile_cols must be >= 1")
    n_out, b = w.shape[0], y.shape[1]
    if out is None:
        out = np.zeros((n_out, b), dtype=y.dtype)
    else:
        out[...] = 0
    for lo in range(0, b, tile_cols):
        hi = min(b, lo + tile_cols)
        out[:, lo:hi] = spmm_reduceat(w, np.ascontiguousarray(y[:, lo:hi]))
    return out


def spmm(w, y: np.ndarray, method: str = "auto") -> np.ndarray:
    """Dispatching spMM.  ``method`` in {'auto', 'reduceat', 'ell', 'scatter'}."""
    if method == "auto":
        method = "ell" if isinstance(w, ELLMatrix) else "reduceat"
    if method == "ell":
        if not isinstance(w, ELLMatrix):
            w = ELLMatrix.from_csr(w)
        return spmm_ell(w, y)
    if isinstance(w, ELLMatrix):
        w = w.to_csr()
    if method == "reduceat":
        return spmm_reduceat(w, y)
    if method == "scatter":
        return spmm_scatter(w, y)
    raise ValueError(f"unknown spMM method {method!r}")


def spmm_charge(
    nnz: int, batch: int, n_out: int, dtype_bytes: int = 4, name: str = "spmm"
) -> KernelCharge:
    """Cost-model charge for one spMM: 2 flops and one Y-row-element load per
    nonzero-column pair, plus streaming the output once."""
    return KernelCharge(
        name=name,
        flops=2.0 * nnz * batch,
        bytes_read=float(nnz) * (batch * dtype_bytes + 12),  # Y row + (index, value)
        bytes_written=float(n_out) * batch * dtype_bytes,
    )
