"""From-scratch sparse matrix formats and kernels.

The SDGC weight matrices are highly sparse (32 nonzeros per row); SNICIT and
all baselines spend nearly all their time in sparse-times-dense products
(spMM).  This package implements the storage formats (COO/CSR/CSC/ELL) and a
family of spMM kernels with different parallelization strategies:

* :func:`~repro.sparse.spmm.spmm_reduceat` — row-split CSR (the workhorse),
* :func:`~repro.sparse.spmm.spmm_ell` — ELLPACK for fixed fan-in rows,
* :func:`~repro.sparse.spmm.spmm_scatter` — nonzero-parallel scatter,
* :func:`~repro.sparse.spmm.spmm_masked` — column-masked CSR for
  activation-sparse inputs (the load-reduced spMM of SNICIT §3.3.1 and the
  active-row compaction of BF-2019),
* :func:`~repro.sparse.spgemm.spgemm` — Gustavson sparse×sparse, kept to
  demonstrate the paper's argument (§3.3.1) for *not* using spGEMM on Ŷ.

``scipy.sparse`` is used only in tests as an independent reference.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.ell import ELLMatrix
from repro.sparse.convert import random_sparse, to_csr
from repro.sparse.spmm import (
    spmm,
    spmm_charge,
    spmm_ell,
    spmm_masked,
    spmm_reduceat,
    spmm_scatter,
)
from repro.sparse.spgemm import spgemm

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "ELLMatrix",
    "random_sparse",
    "to_csr",
    "spmm",
    "spmm_charge",
    "spmm_reduceat",
    "spmm_ell",
    "spmm_masked",
    "spmm_scatter",
    "spgemm",
]
