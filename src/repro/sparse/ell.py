"""ELLPACK format for fixed-fan-in matrices.

Every Radix-Net layer has exactly 32 nonzeros per row (SDGC §2.1), so the
sparsity structure is perfectly regular: store it as two dense ``(rows, K)``
arrays of column indices and values.  spMM over ELL is a short sequence of
fully-vectorized gathers — the fastest kernel in the XY-2021 strategy space
for this topology, mirroring how regular fan-in lets real GPU kernels achieve
coalesced loads.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.sparse.csr import CSRMatrix

__all__ = ["ELLMatrix"]


class ELLMatrix:
    """Fixed-width sparse matrix: ``idx[i, k]`` / ``val[i, k]`` per row.

    Rows with fewer than K real nonzeros are padded with ``val == 0`` entries
    pointing at column 0 (a harmless gather).
    """

    __slots__ = ("idx", "val", "shape")

    def __init__(self, idx: np.ndarray, val: np.ndarray, shape: tuple[int, int]):
        self.idx = np.asarray(idx, dtype=np.int64)
        self.val = np.asarray(val)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.idx.shape != self.val.shape or self.idx.ndim != 2:
            raise FormatError("ELL idx/val must be equal-shape 2-D arrays")
        if self.idx.shape[0] != self.shape[0]:
            raise FormatError("ELL row count mismatch")
        if self.idx.size and (self.idx.min() < 0 or self.idx.max() >= self.shape[1]):
            raise FormatError("ELL column index out of range")

    @property
    def width(self) -> int:
        return self.idx.shape[1]

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.val))

    @classmethod
    def from_csr(cls, csr: CSRMatrix, width: int | None = None) -> "ELLMatrix":
        counts = csr.row_nnz
        k = int(counts.max()) if len(counts) and counts.size else 0
        width = width if width is not None else k
        if width < k:
            raise FormatError(f"ELL width {width} < max row nnz {k}")
        n = csr.shape[0]
        idx = np.zeros((n, width), dtype=np.int64)
        val = np.zeros((n, width), dtype=csr.data.dtype if csr.nnz else np.float64)
        # scatter each nonzero into its (row, slot) cell
        rows = np.repeat(np.arange(n), counts)
        slots = np.arange(csr.nnz) - np.repeat(csr.indptr[:-1], counts)
        idx[rows, slots] = csr.indices
        val[rows, slots] = csr.data
        return cls(idx, val, csr.shape)

    def to_csr(self) -> CSRMatrix:
        mask = self.val != 0
        counts = mask.sum(axis=1)
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = self.idx[mask]
        data = self.val[mask]
        # within-row entries may be unsorted; canonicalize via COO round trip
        csr = CSRMatrix(indptr, indices, data, self.shape, validate=False)
        return CSRMatrix.from_coo(csr.to_coo())

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.val.dtype)
        rows = np.repeat(np.arange(self.shape[0]), self.width)
        np.add.at(out, (rows, self.idx.ravel()), self.val.ravel())
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ELLMatrix(shape={self.shape}, width={self.width})"
