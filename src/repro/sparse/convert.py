"""Cross-format conversion helpers and random sparse generators."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.ell import ELLMatrix

__all__ = [
    "to_csr",
    "to_csc",
    "csr_to_csc",
    "csc_to_csr",
    "preferred_spmm_format",
    "random_sparse",
]

#: An ELL view stores ``nrows * max_row_nnz`` slots; beyond this much padding
#: relative to the real nnz, the gather passes touch more zeros than values
#: and CSR wins.
_ELL_PADDING_LIMIT = 1.5


def preferred_spmm_format(w: CSRMatrix, padding_limit: float = _ELL_PADDING_LIMIT) -> str:
    """Pick the storage format ('ell' or 'csr') for spMM over ``w``.

    ELLPACK's fully-vectorized gather passes win when rows have near-uniform
    fan-in (Radix-Net weights are exactly uniform, ratio 1.0); a skewed row
    distribution pads the ELL slab with zeros that still cost gather+FMA
    work, so past ``padding_limit`` the CSR row-split kernel is preferred.
    """
    w = to_csr(w)
    if w.nnz == 0:
        return "csr"
    width = int(w.row_nnz.max())
    padding_ratio = width * w.shape[0] / w.nnz
    return "ell" if padding_ratio <= padding_limit else "csr"


def to_csr(m) -> CSRMatrix:
    """Convert any supported sparse type (or dense ndarray) to CSR."""
    if isinstance(m, CSRMatrix):
        return m
    if isinstance(m, COOMatrix):
        return CSRMatrix.from_coo(m)
    if isinstance(m, CSCMatrix):
        return csc_to_csr(m)
    if isinstance(m, ELLMatrix):
        return m.to_csr()
    return CSRMatrix.from_dense(np.asarray(m))


def to_csc(m) -> CSCMatrix:
    """Convert any supported sparse type (or dense ndarray) to CSC."""
    if isinstance(m, CSCMatrix):
        return m
    if isinstance(m, COOMatrix):
        return CSCMatrix.from_coo(m)
    if isinstance(m, CSRMatrix):
        return csr_to_csc(m)
    if isinstance(m, ELLMatrix):
        return csr_to_csc(m.to_csr())
    return CSCMatrix.from_dense(np.asarray(m))


def csr_to_csc(csr: CSRMatrix) -> CSCMatrix:
    return CSCMatrix.from_coo(csr.to_coo())


def csc_to_csr(csc: CSCMatrix) -> CSRMatrix:
    return CSRMatrix.from_coo(csc.to_coo())


def random_sparse(
    shape: tuple[int, int],
    density: float,
    rng: np.random.Generator,
    value_range: tuple[float, float] = (-1.0, 1.0),
    dtype=np.float32,
) -> CSRMatrix:
    """Random CSR matrix with approximately ``density`` fill (no duplicates).

    Values are uniform in ``value_range`` with exact zeros re-drawn so the
    stored nnz equals the structural nnz.
    """
    if not 0.0 <= density <= 1.0:
        raise ConfigError(f"density must be in [0, 1], got {density}")
    n_rows, n_cols = shape
    total = n_rows * n_cols
    nnz = int(round(density * total))
    flat = rng.choice(total, size=nnz, replace=False) if nnz else np.empty(0, dtype=np.int64)
    rows = flat // n_cols
    cols = flat % n_cols
    lo, hi = value_range
    vals = rng.uniform(lo, hi, size=nnz).astype(dtype)
    vals[vals == 0] = dtype(lo + (hi - lo) * 0.5) or dtype(1.0)
    return CSRMatrix.from_coo(COOMatrix(rows, cols, vals, shape))
