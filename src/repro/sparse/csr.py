"""Compressed Sparse Row (CSR) format."""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.sparse.coo import COOMatrix

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Row-compressed sparse matrix.

    ``indptr`` has length ``nrows + 1``; row ``i``'s nonzeros occupy
    ``indices[indptr[i]:indptr[i+1]]`` / ``data[indptr[i]:indptr[i+1]]``.
    Column indices within a row are kept sorted (canonical form), which the
    spMM kernels rely on for deterministic summation order.
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
        validate: bool = True,
    ):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)
        self.shape = (int(shape[0]), int(shape[1]))
        if validate:
            self.validate()

    def validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.ndim != 1 or len(self.indptr) != n_rows + 1:
            raise FormatError(f"indptr must have length nrows+1={n_rows + 1}")
        if self.indptr[0] != 0:
            raise FormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices) or len(self.indices) != len(self.data):
            raise FormatError("indptr[-1], indices and data lengths are inconsistent")
        if len(self.indices):
            if self.indices.min() < 0 or self.indices.max() >= n_cols:
                raise FormatError("CSR column index out of range")

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def row_nnz(self) -> np.ndarray:
        """Nonzeros per row (length nrows)."""
        return np.diff(self.indptr)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        coo = coo.sum_duplicates()
        n_rows = coo.shape[0]
        counts = np.bincount(coo.row, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, coo.col, coo.data, coo.shape, validate=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    # -- conversion -----------------------------------------------------------
    def to_coo(self) -> COOMatrix:
        rows = np.repeat(np.arange(self.shape[0], dtype=np.int64), self.row_nnz)
        return COOMatrix(rows, self.indices, self.data, self.shape, validate=False)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype if self.nnz else np.float64)
        rows = np.repeat(np.arange(self.shape[0]), self.row_nnz)
        out[rows, self.indices] = self.data
        return out

    def transpose(self) -> "CSRMatrix":
        return CSRMatrix.from_coo(self.to_coo().transpose())

    # -- access ----------------------------------------------------------------
    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(column indices, values) of row ``i`` — views, not copies."""
        if not 0 <= i < self.shape[0]:
            raise ShapeError(f"row {i} out of range for {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def take_rows(self, rows: np.ndarray) -> "CSRMatrix":
        """New CSR containing only the given rows (in the given order)."""
        rows = np.asarray(rows, dtype=np.int64)
        counts = self.row_nnz[rows]
        indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # gather each selected row's nonzero span
        starts = self.indptr[rows]
        total = int(indptr[-1])
        gather = np.empty(total, dtype=np.int64)
        pos = 0
        for s, c in zip(starts, counts):
            gather[pos : pos + c] = np.arange(s, s + c)
            pos += c
        return CSRMatrix(
            indptr, self.indices[gather], self.data[gather], (len(rows), self.shape[1]),
            validate=False,
        )

    # -- arithmetic --------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Sparse matrix - dense vector product."""
        x = np.asarray(x)
        if x.shape != (self.shape[1],):
            raise ShapeError(f"matvec expects vector of length {self.shape[1]}")
        contrib = self.data * x[self.indices]
        return _segment_sum(contrib, self.indptr, self.shape[0])

    def scale_rows(self, scale: np.ndarray) -> "CSRMatrix":
        """Return a copy with row ``i`` multiplied by ``scale[i]``."""
        scale = np.asarray(scale)
        if scale.shape != (self.shape[0],):
            raise ShapeError("scale must have one entry per row")
        data = self.data * np.repeat(scale, self.row_nnz)
        return CSRMatrix(self.indptr, self.indices, data, self.shape, validate=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"


def _segment_sum(values: np.ndarray, indptr: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum ``values`` within the segments delimited by ``indptr``.

    Handles empty segments, which ``np.add.reduceat`` alone gets wrong (for a
    repeated boundary it returns the *next* element instead of 0).
    """
    if values.ndim == 1:
        out = np.zeros(n_segments, dtype=values.dtype)
    else:
        out = np.zeros((n_segments,) + values.shape[1:], dtype=values.dtype)
    lengths = np.diff(indptr)
    nonempty = np.flatnonzero(lengths > 0)
    if len(nonempty) == 0:
        return out
    starts = indptr[nonempty]
    out[nonempty] = np.add.reduceat(values, starts, axis=0)
    return out
