"""Gustavson sparse x sparse multiplication (spGEMM).

SNICIT §3.3.1 argues *against* computing ``W · Ŷ`` with spGEMM: Ŷ would need
recompression every layer, and the mix of dense centroid columns with sparse
residue columns makes the workload irregular.  We keep a correct spGEMM here
so the ablation benchmark can demonstrate that argument quantitatively.

The implementation is the classic row-by-row Gustavson algorithm with a dense
accumulator, vectorized over each row's nonzero gather.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix

__all__ = ["spgemm"]


def spgemm(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Compute ``A @ B`` with both operands and the result in CSR."""
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"spGEMM shapes incompatible: {a.shape} x {b.shape}")
    n_rows, n_cols = a.shape[0], b.shape[1]
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    accumulator = np.zeros(n_cols, dtype=np.result_type(a.data.dtype, b.data.dtype))
    touched = np.zeros(n_cols, dtype=bool)
    nnz = 0
    for i in range(n_rows):
        cols_a, vals_a = a.row(i)
        if len(cols_a) == 0:
            indptr[i + 1] = nnz
            continue
        touched_cols: list[np.ndarray] = []
        for j, v in zip(cols_a, vals_a):
            cols_b, vals_b = b.row(int(j))
            if len(cols_b) == 0:
                continue
            accumulator[cols_b] += v * vals_b
            touched[cols_b] = True
            touched_cols.append(cols_b)
        if touched_cols:
            cols = np.unique(np.concatenate(touched_cols))
            vals = accumulator[cols]
            keep = vals != 0
            cols, vals = cols[keep], vals[keep]
            out_indices.append(cols)
            out_data.append(vals.copy())
            nnz += len(cols)
            accumulator[touched] = 0
            touched[:] = False
        indptr[i + 1] = nnz
    indices = np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_data) if out_data else np.empty(0, dtype=accumulator.dtype)
    return CSRMatrix(indptr, indices, data, (n_rows, n_cols), validate=False)
