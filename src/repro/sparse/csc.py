"""Compressed Sparse Column (CSC) format."""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.sparse.coo import COOMatrix

__all__ = ["CSCMatrix"]


class CSCMatrix:
    """Column-compressed sparse matrix (the transpose view of CSR).

    Used where column gathering is the hot operation: slicing the weight
    matrix down to the active input neurons (BF-2019's compaction) and
    building per-column task partitions (SNIG-2020).
    """

    __slots__ = ("indptr", "indices", "data", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
        validate: bool = True,
    ):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data)
        self.shape = (int(shape[0]), int(shape[1]))
        if validate:
            self.validate()

    def validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.ndim != 1 or len(self.indptr) != n_cols + 1:
            raise FormatError(f"indptr must have length ncols+1={n_cols + 1}")
        if self.indptr[0] != 0:
            raise FormatError("indptr[0] must be 0")
        if np.any(np.diff(self.indptr) < 0):
            raise FormatError("indptr must be non-decreasing")
        if self.indptr[-1] != len(self.indices) or len(self.indices) != len(self.data):
            raise FormatError("indptr[-1], indices and data lengths are inconsistent")
        if len(self.indices):
            if self.indices.min() < 0 or self.indices.max() >= n_rows:
                raise FormatError("CSC row index out of range")

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def col_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        coo = coo.sum_duplicates()
        # sort by (col, row)
        order = np.lexsort((coo.row, coo.col))
        col = coo.col[order]
        counts = np.bincount(col, minlength=coo.shape[1])
        indptr = np.zeros(coo.shape[1] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, coo.row[order], coo.data[order], coo.shape, validate=False)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSCMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    def to_coo(self) -> COOMatrix:
        cols = np.repeat(np.arange(self.shape[1], dtype=np.int64), self.col_nnz)
        return COOMatrix(self.indices, cols, self.data, self.shape, validate=False)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype if self.nnz else np.float64)
        cols = np.repeat(np.arange(self.shape[1]), self.col_nnz)
        out[self.indices, cols] = self.data
        return out

    def col(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """(row indices, values) of column ``j`` — views, not copies."""
        if not 0 <= j < self.shape[1]:
            raise ShapeError(f"column {j} out of range for {self.shape}")
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def take_columns(self, cols: np.ndarray) -> "CSCMatrix":
        """New CSC containing only the given columns (in the given order)."""
        cols = np.asarray(cols, dtype=np.int64)
        counts = self.col_nnz[cols]
        indptr = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        gather = np.empty(total, dtype=np.int64)
        pos = 0
        for s, c in zip(self.indptr[cols], counts):
            gather[pos : pos + c] = np.arange(s, s + c)
            pos += c
        return CSCMatrix(
            indptr, self.indices[gather], self.data[gather], (self.shape[0], len(cols)),
            validate=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
