"""Coordinate (COO) sparse matrix format."""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError, ShapeError

__all__ = ["COOMatrix"]


class COOMatrix:
    """Triplet-format sparse matrix: parallel (row, col, data) arrays.

    COO is the assembly format: generators (Radix-Net, the NN sparsifier)
    emit triplets, which are then deduplicated/sorted and converted to CSR or
    CSC for computation.
    """

    __slots__ = ("row", "col", "data", "shape")

    def __init__(
        self,
        row: np.ndarray,
        col: np.ndarray,
        data: np.ndarray,
        shape: tuple[int, int],
        validate: bool = True,
    ):
        self.row = np.asarray(row, dtype=np.int64)
        self.col = np.asarray(col, dtype=np.int64)
        self.data = np.asarray(data)
        self.shape = (int(shape[0]), int(shape[1]))
        if validate:
            self.validate()

    def validate(self) -> None:
        if self.row.ndim != 1 or self.col.ndim != 1 or self.data.ndim != 1:
            raise FormatError("COO arrays must be one-dimensional")
        if not (len(self.row) == len(self.col) == len(self.data)):
            raise FormatError(
                f"COO triplet length mismatch: {len(self.row)}/{len(self.col)}/{len(self.data)}"
            )
        if self.shape[0] < 0 or self.shape[1] < 0:
            raise ShapeError(f"negative shape {self.shape}")
        if len(self.row):
            if self.row.min() < 0 or self.row.max() >= self.shape[0]:
                raise FormatError("COO row index out of range")
            if self.col.min() < 0 or self.col.max() >= self.shape[1]:
                raise FormatError("COO col index out of range")

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise ShapeError(f"expected 2-D array, got {dense.ndim}-D")
        r, c = np.nonzero(dense)
        return cls(r, c, dense[r, c], dense.shape)

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.data.dtype if self.nnz else np.float64)
        # += via add.at so duplicate triplets sum, matching sparse semantics
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def sorted(self) -> "COOMatrix":
        """Return a copy sorted by (row, col)."""
        order = np.lexsort((self.col, self.row))
        return COOMatrix(
            self.row[order], self.col[order], self.data[order], self.shape, validate=False
        )

    def sum_duplicates(self) -> "COOMatrix":
        """Return a copy with duplicate (row, col) entries summed."""
        if self.nnz == 0:
            return COOMatrix(self.row, self.col, self.data, self.shape, validate=False)
        s = self.sorted()
        key = s.row * self.shape[1] + s.col
        boundaries = np.concatenate(([True], key[1:] != key[:-1]))
        starts = np.flatnonzero(boundaries)
        data = np.add.reduceat(s.data, starts)
        return COOMatrix(s.row[starts], s.col[starts], data, self.shape, validate=False)

    def transpose(self) -> "COOMatrix":
        return COOMatrix(self.col, self.row, self.data, (self.shape[1], self.shape[0]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
